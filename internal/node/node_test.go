package node

import (
	"fmt"
	"testing"
	"time"

	"omcast/internal/wire"
)

// fast is the accelerated timing profile the integration tests run at.
var fast = Config{
	HeartbeatInterval: 20 * time.Millisecond,
	GossipInterval:    25 * time.Millisecond,
	StreamRate:        100, // 100 pkt/s keeps test wall-time short
	BufferPackets:     512,
	RecoveryGroup:     3,
}

func init() {
	if raceEnabled {
		// Race instrumentation slows message handling severalfold; with the
		// 20 ms heartbeat the 3x liveness timeout then flags healthy peers as
		// dead and the overlay flaps. Stretch the timers (and cut the packet
		// load to match) so timeouts measure the protocol, not the detector.
		fast.HeartbeatInterval *= 4
		fast.GossipInterval *= 4
		fast.StreamRate = 25
	}
}

// cluster boots a source plus n members on an in-memory network.
type cluster struct {
	t      *testing.T
	net    *MemNetwork
	source *Node
	nodes  []*Node
}

func newCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) *cluster {
	return newClusterSrc(t, n, 8, mutate)
}

func newClusterSrc(t *testing.T, n int, srcBandwidth float64, mutate func(i int, cfg *Config)) *cluster {
	t.Helper()
	network := NewMemNetwork(nil)
	c := &cluster{t: t, net: network}
	t.Cleanup(func() {
		for _, nd := range append([]*Node{c.source}, c.nodes...) {
			if nd != nil {
				nd.Kill()
			}
		}
		network.Close()
	})

	srcCfg := fast
	srcCfg.Source = true
	srcCfg.Bandwidth = srcBandwidth
	ep, err := network.Endpoint("source")
	if err != nil {
		t.Fatal(err)
	}
	c.source = New(srcCfg, ep)
	c.source.Start()

	for i := 0; i < n; i++ {
		cfg := fast
		cfg.Bandwidth = 3
		cfg.Bootstrap = []wire.Addr{"source"}
		if mutate != nil {
			mutate(i, &cfg)
		}
		ep, err := network.Endpoint(wire.Addr(fmt.Sprintf("n%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		nd := New(cfg, ep)
		c.nodes = append(c.nodes, nd)
		nd.Start()
	}
	return c
}

// eventually polls cond until it holds or the deadline expires.
func eventually(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	if raceEnabled {
		within *= 4
	}
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition %q not reached within %v", what, within)
}

func (c *cluster) allAttached() bool {
	for _, nd := range c.nodes {
		if !nd.Stats().Attached {
			return false
		}
	}
	return true
}

func TestTreeForms(t *testing.T) {
	c := newCluster(t, 12, nil)
	eventually(t, 5*time.Second, "all 12 nodes attached", c.allAttached)
	// Structural sanity: depths are positive and parents resolve.
	for _, nd := range c.nodes {
		s := nd.Stats()
		if s.Depth < 1 {
			t.Fatalf("%s attached at depth %d", nd, s.Depth)
		}
		if s.Parent == "" {
			t.Fatalf("%s attached without a parent", nd)
		}
	}
}

func TestStreamFlows(t *testing.T) {
	c := newCluster(t, 10, nil)
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	// Every node's stream position advances with the source.
	eventually(t, 5*time.Second, "everyone past packet 50", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().HighestPacket < 50 {
				return false
			}
		}
		return true
	})
	for _, nd := range c.nodes {
		s := nd.Stats()
		if s.PacketsReceived == 0 {
			t.Fatalf("%s attached but received nothing", nd)
		}
	}
}

// TestFailureRecovery kills an interior node and requires (a) its children
// to re-attach and (b) the stream to keep advancing for everyone else.
func TestFailureRecovery(t *testing.T) {
	c := newCluster(t, 14, nil)
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	eventually(t, 5*time.Second, "stream warm", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().HighestPacket < 20 {
				return false
			}
		}
		return true
	})
	// Find an interior node (has children).
	var victim *Node
	for _, nd := range c.nodes {
		if nd.Stats().Children > 0 {
			victim = nd
			break
		}
	}
	if victim == nil {
		t.Skip("no interior member in this layout")
	}
	victimHighest := victim.Stats().HighestPacket
	victim.Kill()
	survivors := make([]*Node, 0, len(c.nodes)-1)
	for _, nd := range c.nodes {
		if nd != victim {
			survivors = append(survivors, nd)
		}
	}
	eventually(t, 8*time.Second, "survivors re-attached and streaming past the failure point", func() bool {
		for _, nd := range survivors {
			s := nd.Stats()
			if !s.Attached || s.Parent == victim.Addr() {
				return false
			}
			if s.HighestPacket < victimHighest+100 {
				return false
			}
		}
		return true
	})
	// At least one orphan recorded a rejoin.
	rejoins := int64(0)
	for _, nd := range survivors {
		rejoins += nd.Stats().Rejoins
	}
	if rejoins == 0 {
		t.Fatal("no rejoins after an interior failure")
	}
	// Every orphan is re-attached by now, so the landing-side counter must
	// have caught up: completed failovers are >= 1 and never outnumber the
	// detachments that caused them.
	failovers := int64(0)
	for _, nd := range survivors {
		failovers += nd.Stats().Failovers
	}
	if failovers == 0 {
		t.Fatal("no completed failovers recorded after re-attachment")
	}
	if failovers > rejoins {
		t.Fatalf("failovers %d > rejoins %d (landings cannot outnumber detachments)", failovers, rejoins)
	}
}

// TestGracefulLeave: a Stop()ed node notifies neighbours, so children rejoin
// without waiting for heartbeat timeouts.
func TestGracefulLeave(t *testing.T) {
	c := newCluster(t, 10, nil)
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	var leaver *Node
	for _, nd := range c.nodes {
		if nd.Stats().Children > 0 {
			leaver = nd
			break
		}
	}
	if leaver == nil {
		t.Skip("no interior member in this layout")
	}
	leaver.Stop()
	eventually(t, 5*time.Second, "survivors re-attached", func() bool {
		for _, nd := range c.nodes {
			if nd == leaver {
				continue
			}
			s := nd.Stats()
			if !s.Attached || s.Parent == leaver.Addr() {
				return false
			}
		}
		return true
	})
}

// TestRepairFillsGaps: a node that missed packets recovers them from its
// recovery group (PacketsRepaired > 0 somewhere after an interior failure).
func TestRepairFillsGaps(t *testing.T) {
	c := newCluster(t, 14, nil)
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	eventually(t, 5*time.Second, "stream warm", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().HighestPacket < 30 {
				return false
			}
		}
		return true
	})
	var victim *Node
	for _, nd := range c.nodes {
		if nd.Stats().Children > 0 {
			victim = nd
			break
		}
	}
	if victim == nil {
		t.Skip("no interior member")
	}
	victim.Kill()
	eventually(t, 8*time.Second, "repaired packets observed", func() bool {
		var repaired, served int64
		for _, nd := range c.nodes {
			if nd == victim {
				continue
			}
			s := nd.Stats()
			repaired += s.PacketsRepaired
			served += s.RepairsServed
		}
		return repaired > 0 && served > 0
	})
}

// TestSwitchPromotesStrongNode: with switching enabled and a deliberately
// weak first-joiner, a strong later node ends up closer to the source.
func TestSwitchPromotesStrongNode(t *testing.T) {
	// A narrow source (2 slots) forces depth, giving switching something to
	// optimise.
	c := newClusterSrc(t, 7, 2, func(i int, cfg *Config) {
		cfg.SwitchInterval = 60 * time.Millisecond
		cfg.Bandwidth = 2
	})
	eventually(t, 8*time.Second, "all attached", c.allAttached)
	// Now a genuinely late, strong node arrives: it must start deep (the
	// depth-1 slots are taken) and earn its way up via BTP switching.
	strongCfg := fast
	strongCfg.Bandwidth = 6
	strongCfg.SwitchInterval = 60 * time.Millisecond
	strongCfg.Bootstrap = []wire.Addr{"source"}
	ep, err := c.net.Endpoint("strong")
	if err != nil {
		t.Fatal(err)
	}
	strong := New(strongCfg, ep)
	c.nodes = append(c.nodes, strong)
	strong.Start()
	eventually(t, 10*time.Second, "a switch completed somewhere", func() bool {
		total := int64(0)
		for _, nd := range c.nodes {
			total += nd.Stats().Switches
		}
		return total > 0
	})
	// The overlay remains attached and streaming after switches.
	eventually(t, 5*time.Second, "overlay still healthy", func() bool {
		for _, nd := range c.nodes {
			if !nd.Stats().Attached {
				return false
			}
		}
		return strong.Stats().Attached
	})
}

// TestELNSuppression: after an interior failure, descendants receive ELN and
// rely on upstream repair (ELNsSent > 0).
func TestELNPropagates(t *testing.T) {
	// A narrow source forces chains, so orphans have children of their own
	// — the population ELN exists for.
	c := newClusterSrc(t, 14, 2, func(i int, cfg *Config) {
		cfg.Bandwidth = 2
	})
	eventually(t, 8*time.Second, "all attached", c.allAttached)
	eventually(t, 5*time.Second, "stream warm", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().HighestPacket < 30 {
				return false
			}
		}
		return true
	})
	// ELN is sent by an orphan that still has children of its own, so kill
	// the PARENT of an interior member.
	byAddr := map[wire.Addr]*Node{}
	for _, nd := range c.nodes {
		byAddr[nd.Addr()] = nd
	}
	var victim *Node
	for _, nd := range c.nodes {
		if nd.Stats().Children == 0 {
			continue
		}
		if p, ok := byAddr[nd.Stats().Parent]; ok && p.Stats().Children > 0 {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Skip("no interior member with an interior child in this layout")
	}
	victim.Kill()
	eventually(t, 8*time.Second, "ELN messages sent", func() bool {
		var elns int64
		for _, nd := range c.nodes {
			elns += nd.Stats().ELNsSent
		}
		return elns > 0
	})
}

func TestStatsSnapshot(t *testing.T) {
	c := newCluster(t, 3, nil)
	eventually(t, 5*time.Second, "attached", c.allAttached)
	s := c.nodes[0].Stats()
	if s.KnownMembers == 0 {
		t.Fatal("gossip produced no membership")
	}
	if got := c.nodes[0].String(); got == "" {
		t.Fatal("empty debug string")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.HeartbeatInterval <= 0 || cfg.HeartbeatTimeout <= 0 ||
		cfg.GossipInterval <= 0 || cfg.BufferPackets <= 0 ||
		cfg.RecoveryGroup <= 0 || cfg.MembershipLimit <= 0 || cfg.StreamRate <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestStopIdempotent(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	ep, err := network.Endpoint("x")
	if err != nil {
		t.Fatal(err)
	}
	nd := New(fast, ep)
	nd.Start()
	nd.Stop()
	nd.Stop() // second stop must not panic or deadlock
	nd.Kill() // nor a kill after a stop
}

// TestChurnStress runs a 25-node overlay through several seconds of random
// kills and replacements; the overlay must end attached and streaming.
func TestChurnStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	c := newClusterSrc(t, 25, 4, func(i int, cfg *Config) {
		cfg.Bandwidth = 2 + float64(i%3)
		cfg.SwitchInterval = 150 * time.Millisecond
	})
	eventually(t, 10*time.Second, "all attached", c.allAttached)

	// Churn: kill five nodes one by one, adding a replacement each time.
	next := 100
	for round := 0; round < 5; round++ {
		// Kill a random live node (prefer interior for maximum damage).
		var victim *Node
		for _, nd := range c.nodes {
			if nd.Stats().Attached && nd.Stats().Children > 0 {
				victim = nd
				break
			}
		}
		if victim == nil {
			for _, nd := range c.nodes {
				if nd.Stats().Attached {
					victim = nd
					break
				}
			}
		}
		if victim == nil {
			t.Fatal("nobody left to kill")
		}
		victim.Kill()
		// Replacement joins through the source.
		cfg := fast
		cfg.Bandwidth = 3
		cfg.SwitchInterval = 150 * time.Millisecond
		cfg.Bootstrap = []wire.Addr{"source"}
		ep, err := c.net.Endpoint(wire.Addr(fmt.Sprintf("r%02d", next)))
		if err != nil {
			t.Fatal(err)
		}
		next++
		repl := New(cfg, ep)
		repl.Start()
		// Swap into the roster replacing the victim.
		for i, nd := range c.nodes {
			if nd == victim {
				c.nodes[i] = repl
			}
		}
		time.Sleep(300 * time.Millisecond)
	}
	eventually(t, 15*time.Second, "overlay healthy after churn", func() bool {
		for _, nd := range c.nodes {
			s := nd.Stats()
			if !s.Attached {
				return false
			}
		}
		return true
	})
	// The stream still advances for everyone.
	marks := make([]int64, len(c.nodes))
	for i, nd := range c.nodes {
		marks[i] = nd.Stats().HighestPacket
	}
	eventually(t, 10*time.Second, "stream advancing everywhere", func() bool {
		for i, nd := range c.nodes {
			if nd.Stats().HighestPacket <= marks[i] {
				return false
			}
		}
		return true
	})
}

// TestDepthSelfCorrects: after switches reshuffle the tree, heartbeat-carried
// depths keep every node's depth = parent depth + 1.
func TestDepthSelfCorrects(t *testing.T) {
	c := newClusterSrc(t, 10, 2, func(i int, cfg *Config) {
		cfg.Bandwidth = 2 + float64(i%2)*2
		cfg.SwitchInterval = 100 * time.Millisecond
	})
	eventually(t, 8*time.Second, "all attached", c.allAttached)
	time.Sleep(time.Second) // let switches and heartbeats settle
	byAddr := map[wire.Addr]*Node{"source": c.source}
	for _, nd := range c.nodes {
		byAddr[nd.Addr()] = nd
	}
	eventually(t, 5*time.Second, "depths consistent", func() bool {
		for _, nd := range c.nodes {
			s := nd.Stats()
			if !s.Attached {
				return false
			}
			parent, ok := byAddr[s.Parent]
			if !ok {
				continue // parent may be a replacement not in the map
			}
			if s.Depth != parent.Stats().Depth+1 {
				return false
			}
		}
		return true
	})
}

// TestPlaybackScoring feeds a lone node packets directly, stops, and checks
// that slots past the playout deadline are scored played vs starved.
func TestPlaybackScoring(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	ep, err := network.Endpoint("viewer")
	if err != nil {
		t.Fatal(err)
	}
	feeder, err := network.Endpoint("feeder")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fast
	cfg.Bandwidth = 1
	cfg.PlaybackBuffer = 100 * time.Millisecond
	cfg.StreamRate = 100
	nd := New(cfg, ep)
	nd.Start()
	defer nd.Kill()

	send := func(seq int64) {
		data, err := wire.Encode(wire.Envelope{Type: wire.TypePacket, From: "feeder", Packet: seq})
		if err != nil {
			t.Fatal(err)
		}
		if err := feeder.Send("viewer", data); err != nil {
			t.Fatal(err)
		}
	}
	// Packets 0..49 then a hole 50..59 then 60..79.
	for seq := int64(0); seq < 50; seq++ {
		send(seq)
	}
	for seq := int64(60); seq < 80; seq++ {
		send(seq)
	}
	eventually(t, 5*time.Second, "playback scored the hole", func() bool {
		s := nd.Stats()
		return s.StarvedSlots >= 10 && s.PlayedSlots >= 60
	})
	s := nd.Stats()
	if s.StarvingRatio() <= 0 || s.StarvingRatio() >= 1 {
		t.Fatalf("starving ratio = %g, want in (0,1)", s.StarvingRatio())
	}
	// The hole is contiguous: it must register as stall episodes with
	// accumulated stall time of at least the hole's duration (10 slots at
	// 100 pkt/s = 100 ms), and playback must have resumed (ended the stall).
	if s.Stalls < 1 {
		t.Fatalf("stalls = %d, want >= 1", s.Stalls)
	}
	if s.StallSeconds < 0.099 { // 10 slots x 10 ms, minus float accumulation
		t.Fatalf("stall seconds = %g, want >= ~0.1", s.StallSeconds)
	}
	if s.StallSeconds > float64(s.StarvedSlots)/100+1e-9 {
		t.Fatalf("stall seconds %g exceeds starved slots %d / rate", s.StallSeconds, s.StarvedSlots)
	}
}

// TestHealthyPlaybackDoesNotStarve: in a stable cluster, starved slots stay
// at (near) zero.
func TestHealthyPlaybackDoesNotStarve(t *testing.T) {
	c := newCluster(t, 8, func(i int, cfg *Config) {
		cfg.PlaybackBuffer = 200 * time.Millisecond
	})
	eventually(t, 5*time.Second, "all attached", c.allAttached)
	eventually(t, 5*time.Second, "playback running", func() bool {
		for _, nd := range c.nodes {
			if nd.Stats().PlayedSlots < 100 {
				return false
			}
		}
		return true
	})
	for _, nd := range c.nodes {
		s := nd.Stats()
		if s.StarvingRatio() > 0.05 {
			t.Fatalf("%s starving ratio %.3f in a healthy overlay", nd, s.StarvingRatio())
		}
	}
}
