// Package runtimecfg applies the memory knobs behind the CLIs' shared
// -memlimit and -gcpercent flags. The simulator's struct-of-arrays core keeps
// million-member sessions inside a few GiB of retained heap, but the Go
// runtime's default GOGC=100 still lets the total footprint reach roughly
// twice the live set between collections; a soft memory limit
// (debug.SetMemoryLimit) trades GC CPU for a hard-ish footprint bound on
// memory-constrained hosts.
package runtimecfg

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
)

// Apply installs the runtime knobs. memlimit is a byte size with an optional
// binary suffix ("8GiB", "512MiB", "4G"); empty or "off" leaves the runtime
// default (no limit). gcpercent sets GOGC; negative leaves the runtime
// default (100). Returns the applied limit in bytes (0 when left alone).
func Apply(memlimit string, gcpercent int) (int64, error) {
	var applied int64
	if s := strings.TrimSpace(memlimit); s != "" && !strings.EqualFold(s, "off") {
		n, err := ParseBytes(s)
		if err != nil {
			return 0, fmt.Errorf("runtimecfg: -memlimit: %w", err)
		}
		debug.SetMemoryLimit(n)
		applied = n
	}
	if gcpercent >= 0 {
		debug.SetGCPercent(gcpercent)
	}
	return applied, nil
}

// ParseBytes parses a byte count with an optional binary-multiple suffix.
// Accepted suffixes (case-insensitive): K/KB/KiB, M/MB/MiB, G/GB/GiB,
// T/TB/TiB — all binary (1K = 1024), matching GOMEMLIMIT's units. A bare
// number is bytes.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"TIB", 1 << 40}, {"TB", 1 << 40}, {"T", 1 << 40},
	} {
		if strings.HasSuffix(upper, suf.text) {
			mult = suf.mult
			t = strings.TrimSpace(t[:len(t)-len(suf.text)])
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid byte size %q (want e.g. 8GiB, 512MiB, 1073741824)", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n * mult, nil
}
