package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A suppression directive has the form
//
//	//lint:ignore <rule> reason: <justification>
//
// and silences findings of <rule> on the directive's own line (trailing
// comment) or on the line immediately below it (leading comment). The
// "reason:" token and a non-empty justification are mandatory — a
// suppression without a recorded why is reported as a bad-directive finding
// instead, as is one naming a rule the analyzer doesn't have. Directives
// that silence nothing are reported by the stale-suppression audit at the
// end of every full-rule-set run.
type directive struct {
	pos  token.Position
	rule string
	// used counts how many diagnostics this directive silenced in the run.
	used int
}

type suppressions struct {
	directives []*directive
	malformed  []Diagnostic
}

const directivePrefix = "lint:ignore"

// collectDirectives scans every comment of every package for //lint:ignore
// directives. The index is module-global so module-wide rules and the
// staleness audit see one consistent picture.
func collectDirectives(pkgs []*Package) *suppressions {
	s := &suppressions{}
	known := make(map[string]bool)
	for _, name := range RuleNames() {
		known[name] = true
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					s.add(pkg.Fset, c, known)
				}
			}
		}
	}
	return s
}

func (s *suppressions) add(fset *token.FileSet, c *ast.Comment, known map[string]bool) {
	text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
	if !ok {
		return
	}
	pos := fset.Position(c.Pos())
	bad := func(format string, args ...any) {
		s.malformed = append(s.malformed, Diagnostic{Pos: pos, Rule: RuleBadDirective,
			Message: fmt.Sprintf(format, args...)})
	}
	fields := strings.Fields(text)
	if len(fields) < 3 || fields[1] != "reason:" {
		bad("malformed suppression: want //lint:ignore <rule> reason: <justification>; " +
			"the reason: token and a non-empty justification are mandatory")
		return
	}
	if !known[fields[0]] {
		bad("suppression names unknown rule %q; run omcast-lint -list for the rule set", fields[0])
		return
	}
	s.directives = append(s.directives, &directive{pos: pos, rule: fields[0]})
}

// suppresses reports whether a directive covers the diagnostic, marking the
// match for the staleness audit.
func (s *suppressions) suppresses(d Diagnostic) bool {
	for _, dir := range s.directives {
		if dir.pos.Filename != d.Pos.Filename || dir.rule != d.Rule {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			dir.used++
			return true
		}
	}
	return false
}

// stale reports every directive that silenced nothing: either the underlying
// code was fixed (delete the directive) or the directive drifted away from
// the line it used to cover (it is now silently inert — worse than noise).
func (s *suppressions) stale() []Diagnostic {
	var out []Diagnostic
	for _, dir := range s.directives {
		if dir.used > 0 {
			continue
		}
		out = append(out, Diagnostic{
			Pos:  dir.pos,
			Rule: RuleStaleSuppression,
			Message: fmt.Sprintf("//lint:ignore %s suppressed nothing in this run; "+
				"the finding it covered is gone (or the directive drifted off its line) — delete it",
				dir.rule),
		})
	}
	return out
}
