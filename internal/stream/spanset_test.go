package stream

import (
	"testing"

	"omcast/internal/xrand"
)

func freshSet() spanSet { return spanSet{watermark: -1} }

func wantSpans(t *testing.T, s *spanSet, watermark int64, spans ...span) {
	t.Helper()
	if s.watermark != watermark {
		t.Fatalf("watermark = %d, want %d (spans %v)", s.watermark, watermark, s.spans)
	}
	if len(s.spans) != len(spans) {
		t.Fatalf("spans = %v, want %v", s.spans, spans)
	}
	for i := range spans {
		if s.spans[i] != spans[i] {
			t.Fatalf("spans = %v, want %v", s.spans, spans)
		}
	}
}

func TestSpanSetZeroLengthIsNoOp(t *testing.T) {
	s := freshSet()
	s.add(5, 5)
	s.add(7, 3)
	wantSpans(t, &s, -1)
	if got := s.appendUncovered(nil, 5, 5); len(got) != 0 {
		t.Fatalf("zero-length query returned %v", got)
	}
}

func TestSpanSetWatermarkExtension(t *testing.T) {
	s := freshSet()
	s.add(0, 10)
	wantSpans(t, &s, 9)
	s.add(10, 20) // adjacent to the watermark: extends it
	wantSpans(t, &s, 19)
	s.add(5, 15) // entirely at or below: no change
	wantSpans(t, &s, 19)
}

func TestSpanSetMergeAndAbsorb(t *testing.T) {
	s := freshSet()
	s.add(10, 20)
	wantSpans(t, &s, -1, span{10, 20})
	s.add(30, 40)
	wantSpans(t, &s, -1, span{10, 20}, span{30, 40})
	s.add(18, 32) // bridges the two spans
	wantSpans(t, &s, -1, span{10, 40})
	s.add(0, 10) // reaches the watermark: span absorbed, pure watermark again
	wantSpans(t, &s, 39)
}

func TestSpanSetAppendUncovered(t *testing.T) {
	s := spanSet{watermark: 9, spans: []span{{20, 30}}}
	cases := []struct {
		from, to int64
		want     []span
	}{
		{0, 40, []span{{10, 20}, {30, 40}}}, // clip + split around the span
		{22, 28, nil},                       // fully inside the span
		{15, 25, []span{{15, 20}}},          // straddles the span's left edge
		{25, 35, []span{{30, 35}}},          // straddles the right edge
		{0, 5, nil},                         // fully below the watermark
		{0, 10, nil},                        // ends exactly at watermark+1
	}
	for _, tc := range cases {
		got := s.appendUncovered(nil, tc.from, tc.to)
		if len(got) != len(tc.want) {
			t.Fatalf("uncovered(%d,%d) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("uncovered(%d,%d) = %v, want %v", tc.from, tc.to, got, tc.want)
			}
		}
	}
}

func TestSpanSetSeal(t *testing.T) {
	s := freshSet()
	s.add(1000, 1150)
	wantSpans(t, &s, -1, span{1000, 1150})
	s.seal(1000) // monotone-episode forgetting: back to a bare watermark
	wantSpans(t, &s, 1149)
	s.add(1100, 1250) // overlapping later episode
	s.seal(1100)
	wantSpans(t, &s, 1249)
	s.add(5000, 5100) // disjoint later episode: still no span residue
	s.seal(5000)
	wantSpans(t, &s, 5099)
}

// TestSpanSetMatchesNaive is the span-merge property test: random adds —
// including zero-length, adjacent, overlapping and out-of-order ranges —
// must leave the compact representation equivalent to a naive per-packet
// boolean model, and structurally normalized (sorted, disjoint,
// non-adjacent, strictly above the watermark).
func TestSpanSetMatchesNaive(t *testing.T) {
	const domain = 240
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		s := freshSet()
		naive := make([]bool, domain)
		for op := 0; op < 60; op++ {
			from := int64(rng.Intn(domain))
			to := from + int64(rng.Intn(domain/4)) // zero-length allowed
			if to > domain {
				to = domain
			}
			s.add(from, to)
			for n := from; n < to; n++ {
				naive[n] = true
			}
			// Structural normalization.
			prevTo := s.watermark + 1
			for _, sp := range s.spans {
				if sp.from >= sp.to {
					t.Fatalf("trial %d: empty span %v", trial, sp)
				}
				if sp.from <= prevTo {
					t.Fatalf("trial %d: span %v not strictly above %d (spans %v, watermark %d)",
						trial, sp, prevTo, s.spans, s.watermark)
				}
				prevTo = sp.to
			}
			// Point-wise equivalence via covered = domain minus uncovered.
			covered := make([]bool, domain)
			for n := int64(0); n <= s.watermark && n < domain; n++ {
				covered[n] = true
			}
			for _, sp := range s.spans {
				for n := sp.from; n < sp.to && n < domain; n++ {
					covered[n] = true
				}
			}
			for n := 0; n < domain; n++ {
				if covered[n] != naive[n] {
					t.Fatalf("trial %d op %d: seq %d covered=%v naive=%v", trial, op, n, covered[n], naive[n])
				}
			}
			// appendUncovered must report exactly the naive gaps.
			gaps := s.appendUncovered(nil, 0, domain)
			fromGaps := make([]bool, domain)
			for n := range fromGaps {
				fromGaps[n] = true
			}
			for _, g := range gaps {
				for n := g.from; n < g.to; n++ {
					fromGaps[n] = false
				}
			}
			for n := 0; n < domain; n++ {
				if fromGaps[n] != naive[n] {
					t.Fatalf("trial %d op %d: uncovered disagrees at seq %d", trial, op, n)
				}
			}
		}
	}
}
