// Package live is the concurrent wall-clock backend of the instrumentation
// layer: the counterpart of internal/metrics for code that runs on real
// goroutines (internal/node and the live CLIs). Counters and gauges are
// single atomics, histograms are mutex-sharded, and snapshots reuse the
// shared serialisation model in internal/metrics, so the Prometheus text
// encoder and the JSONL schema are identical across both backends.
//
// This package is deliberately NOT simulation-safe (it reads the wall clock
// and uses sync primitives) and must never be imported by a package listed
// in the linter's SimPackages scope.
package live

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"omcast/internal/metrics"
)

// Counter is a monotonically increasing value, safe for concurrent use. The
// zero pointer is a valid no-op sink so uninstrumented nodes pay one nil
// check per update.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta; negative deltas panic (counters are monotone).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("live: counter decremented by %d", delta))
	}
	c.v.Add(delta)
}

// Value returns the current total (0 on the nil sink).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float value that can move both ways, safe for concurrent use.
// The zero pointer is a valid no-op sink.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on the nil sink).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histShards spreads histogram contention across independently locked
// shards; snapshots merge them.
const histShards = 8

type histShard struct {
	mu     sync.Mutex
	counts []uint64 //guardedby:mu
	count  uint64   //guardedby:mu
	sum    float64  //guardedby:mu
	_      [24]byte // soften false sharing between adjacent shards
}

// Histogram counts observations into fixed buckets, safe for concurrent
// use. The zero pointer is a valid no-op sink.
type Histogram struct {
	bounds []float64
	shards [histShards]histShard
	next   atomic.Uint32 // round-robin shard spreader
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s := &h.shards[h.next.Add(1)%histShards]
	s.mu.Lock()
	s.counts[lo]++
	s.count++
	s.sum += v
	s.mu.Unlock()
}

func (h *Histogram) export() *metrics.HistValue {
	out := &metrics.HistValue{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for j, c := range s.counts {
			out.Counts[j] += c
		}
		out.Count += s.count
		out.Sum += s.sum
		s.mu.Unlock()
	}
	return out
}

// entry is one registered instrument.
type entry struct {
	desc metrics.Desc
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is the concurrent registry. Registration takes the registry
// lock; updates touch only the instrument's own atomics or shard locks.
type Registry struct {
	start time.Time

	mu      sync.Mutex
	ordered []*entry          //guardedby:mu
	index   map[string]*entry //guardedby:mu
}

// NewRegistry returns an empty live registry; snapshot timestamps count
// uptime from this call.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), index: make(map[string]*entry)}
}

func (r *Registry) lookup(d metrics.Desc, mk func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[metrics.DescID(d)]; ok {
		if e.desc.Kind != d.Kind {
			panic(fmt.Sprintf("live: %s re-registered as %s (was %s)", d.Name, d.Kind, e.desc.Kind))
		}
		return e
	}
	e := mk()
	r.ordered = append(r.ordered, e)
	r.index[metrics.DescID(d)] = e
	return e
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels ...metrics.Label) *Counter {
	d := metrics.NewDesc(name, help, metrics.KindCounter, labels)
	return r.lookup(d, func() *entry { return &entry{desc: d, c: &Counter{}} }).c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels ...metrics.Label) *Gauge {
	d := metrics.NewDesc(name, help, metrics.KindGauge, labels)
	return r.lookup(d, func() *entry { return &entry{desc: d, g: &Gauge{}} }).g
}

// Histogram registers (or returns) a histogram with the given ascending
// bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...metrics.Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("live: %s: bucket bounds not ascending at %d", name, i))
		}
	}
	d := metrics.NewDesc(name, help, metrics.KindHistogram, labels)
	return r.lookup(d, func() *entry {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		for i := range h.shards {
			h.shards[i].counts = make([]uint64, len(bounds)+1)
		}
		return &entry{desc: d, h: h}
	}).h
}

// Snapshot captures every instrument, keyed by seconds of registry uptime.
func (r *Registry) Snapshot() metrics.Snapshot {
	r.mu.Lock()
	ordered := append([]*entry(nil), r.ordered...)
	r.mu.Unlock()
	snap := metrics.Snapshot{
		T:       time.Since(r.start).Seconds(),
		Metrics: make([]metrics.Metric, 0, len(ordered)),
	}
	for _, e := range ordered {
		m := metrics.Metric{
			Name:   e.desc.Name,
			Kind:   e.desc.Kind,
			Help:   e.desc.Help,
			Labels: e.desc.Labels,
		}
		switch e.desc.Kind {
		case metrics.KindCounter:
			m.Value = float64(e.c.Value())
		case metrics.KindGauge:
			m.Value = e.g.Value()
		case metrics.KindHistogram:
			m.Hist = e.h.export()
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// Handler serves the registry in the Prometheus text exposition format —
// mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.WriteProm(w, r.Snapshot())
	})
}
