// Command omcast-lint enforces the repository's determinism and
// simulation-safety invariants (see internal/lint). It loads and type-checks
// every package in the module using only the standard library, runs the rule
// set, and prints file:line: rule: message diagnostics.
//
// Usage:
//
//	go run ./cmd/omcast-lint ./...            # lint the whole module
//	go run ./cmd/omcast-lint ./internal/...   # lint a subtree
//	go run ./cmd/omcast-lint -list            # describe the rules
//	go run ./cmd/omcast-lint -disable map-order ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on load or
// usage errors. Findings are suppressed in source with
// //lint:ignore <rule> <reason> on the offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"omcast/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("omcast-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the rules and exit")
	disable := fs.String("disable", "", "comma-separated rule names to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-20s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	cfg := lint.DefaultConfig()
	if *disable != "" {
		known := make(map[string]bool)
		for _, r := range lint.Rules() {
			known[r.Name] = true
		}
		for _, name := range strings.Split(*disable, ",") {
			if name = strings.TrimSpace(name); name != "" {
				if !known[name] {
					fmt.Fprintf(os.Stderr, "omcast-lint: unknown rule %q in -disable (see -list)\n", name)
					return 2
				}
				cfg.Disabled = append(cfg.Disabled, name)
			}
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := selectPackages(pkgs, patterns, root, cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omcast-lint:", err)
		return 2
	}

	diags := lint.Run(selected, cfg)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d: %s: %s\n", file, d.Pos.Line, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "omcast-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectPackages filters loaded packages by go-tool-style patterns: "./..."
// (everything below the pattern's directory), a relative directory, or a full
// import path.
func selectPackages(pkgs []*lint.Package, patterns []string, root, cwd string) ([]*lint.Package, error) {
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, pkg := range pkgs {
			ok, err := matchPattern(pkg, pat, root, cwd)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			if !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func matchPattern(pkg *lint.Package, pat, root, cwd string) (bool, error) {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	// Filesystem-relative patterns resolve against the working directory;
	// anything else is treated as an import path (or import-path prefix).
	var base string
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat) {
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if filepath.IsAbs(pat) {
			abs, err = pat, nil
		}
		if err != nil {
			return false, err
		}
		base = abs
		if recursive {
			return pkg.Dir == base || strings.HasPrefix(pkg.Dir, base+string(filepath.Separator)), nil
		}
		return pkg.Dir == base, nil
	}
	if recursive {
		return pkg.Path == pat || strings.HasPrefix(pkg.Path, pat+"/"), nil
	}
	return pkg.Path == pat, nil
}
