// Package rost implements the paper's primary contribution: the
// Reliability-Oriented Switching Tree (ROST) algorithm (Section 3).
//
// ROST is fully distributed. Members join with the minimum-depth rule
// (sample up to 100 known members, pick the highest parent with spare
// capacity, tie-break by network delay). Every switching interval a member
// compares its Bandwidth-Time Product (BTP = outbound bandwidth x age) with
// its parent's; if its BTP exceeds the parent's and its bandwidth is at
// least the parent's, the two exchange tree positions. Before switching, the
// initiator locks the relevant node set (parent, grandparent, children and
// siblings); if any of them is already engaged in another operation the
// initiator backs off and retries later. The position exchange follows
// Figure 2: the promoted child adopts its former parent and its former
// siblings, the demoted parent adopts the promoted child's children, and if
// the demoted parent lacks capacity the largest-BTP overflow children
// reconnect upward to the promoted node.
//
// The package also implements the Section 3.4 reference-node (referee)
// mechanism in referee.go: trusted third-party age and bandwidth witnesses
// that let a parent verify a child's claimed BTP and reject cheaters.
package rost

import (
	"fmt"
	"sort"
	"time"

	"omcast/internal/construct"
	"omcast/internal/eventsim"
	"omcast/internal/metrics"
	"omcast/internal/overlay"
	"omcast/internal/tracing"
)

// Defaults from the paper.
const (
	// DefaultSwitchInterval is the default time between switching checks
	// (Section 5 uses 360 s as the default; Figure 11 sweeps 480-1800 s).
	DefaultSwitchInterval = 360 * time.Second
	// DefaultLockBackoff is how long an initiator waits after failing to
	// lock the switch set ("say, 15 seconds").
	DefaultLockBackoff = 15 * time.Second
	// DefaultSwitchLatency models the coordination time of one switch
	// operation (lock messages, state handoff); locks are held for this
	// long, which is what makes the locking protocol observable.
	DefaultSwitchLatency = time.Second
)

// Config parameterises the protocol. Zero fields take the defaults above.
type Config struct {
	SwitchInterval time.Duration
	LockBackoff    time.Duration
	SwitchLatency  time.Duration
	// Referees, when non-nil, enables BTP verification through the referee
	// mechanism before any switch is honoured.
	Referees *Referees
	// SkipVerification keeps referee-supplied claims (including cheaters'
	// inflated ones) but never verifies them — the unprotected control
	// scenario of the Section 3.4 discussion.
	SkipVerification bool
	// ContributorPriority applies the Section 3.2 incentive rule at join
	// time: free-riders (who can never be displaced by switching, being
	// permanent leaves) are parked at the deepest spare position, keeping
	// the high slots for members that contribute forwarding bandwidth.
	ContributorPriority bool
	// DisableBandwidthGuard removes the "child bandwidth >= parent
	// bandwidth" switching precondition (ablation: the paper argues the
	// guard avoids switches that would only be undone later).
	DisableBandwidthGuard bool
	// OnSwitch, when non-nil, observes every completed switch (promoted
	// child, demoted parent) — used for tracing.
	OnSwitch func(now time.Duration, promoted, demoted overlay.MemberID)
}

func (c Config) withDefaults() Config {
	if c.SwitchInterval <= 0 {
		c.SwitchInterval = DefaultSwitchInterval
	}
	if c.LockBackoff <= 0 {
		c.LockBackoff = DefaultLockBackoff
	}
	if c.SwitchLatency <= 0 {
		c.SwitchLatency = DefaultSwitchLatency
	}
	return c
}

// Protocol drives ROST over one overlay tree inside one simulation. It is
// not safe for concurrent use (the simulation kernel is sequential).
type Protocol struct {
	cfg  Config
	env  *construct.Env
	tree *overlay.Tree
	join construct.Strategy

	nextOp int64
	trace  *tracing.Tracer

	// Switches counts completed switch operations.
	Switches int
	// Aborted counts switches abandoned because the neighbourhood changed
	// while locks were held (e.g. the parent failed mid-operation).
	Aborted int
	// LockFailures counts lock acquisitions that had to back off.
	LockFailures int
	// Rejected counts switches refused because referee verification caught
	// an inflated BTP claim.
	Rejected int

	met protocolMetrics
}

// protocolMetrics mirrors the protocol counters into a metrics registry so
// traced runs can watch switching dynamics evolve instead of reading only
// end-of-run totals. All pointers stay nil until Instrument is called.
type protocolMetrics struct {
	switches  *metrics.Counter
	aborts    *metrics.Counter
	backoffs  *metrics.Counter
	rejected  *metrics.Counter
	promDepth *metrics.Histogram
}

// Instrument registers the protocol's instruments on reg.
func (p *Protocol) Instrument(reg *metrics.Registry) {
	p.met = protocolMetrics{
		switches: reg.Counter("omcast_rost_switches_total", "Completed ROST position exchanges."),
		aborts:   reg.Counter("omcast_rost_switch_aborts_total", "Switches abandoned because the locked neighbourhood changed."),
		backoffs: reg.Counter("omcast_rost_lock_backoffs_total", "Switch attempts that backed off on a locked neighbourhood."),
		rejected: reg.Counter("omcast_rost_rejected_claims_total", "Switches refused after referee BTP verification."),
		promDepth: reg.Histogram("omcast_rost_promotion_depth",
			"Tree depth at which completed switches promoted a member.",
			metrics.LogBuckets(1, 64, 7)),
	}
}

// New creates a ROST protocol instance over tree.
func New(tree *overlay.Tree, env *construct.Env, cfg Config) *Protocol {
	var join construct.Strategy = &construct.MinDepth{Env: env}
	if cfg.ContributorPriority {
		join = &construct.ContributorPriority{Env: env, Inner: join}
	}
	return &Protocol{
		cfg:  cfg.withDefaults(),
		env:  env,
		tree: tree,
		join: join,
	}
}

// Name returns the algorithm's display name.
func (p *Protocol) Name() string { return "ROST" }

// SetOnSwitch installs a completed-switch observer (tracing hook).
func (p *Protocol) SetOnSwitch(fn func(now time.Duration, promoted, demoted overlay.MemberID)) {
	p.cfg.OnSwitch = fn
}

// SetTrace installs a span tracer: every switch decision becomes a
// "switch" span — initiation to commit for started switches (outcomes
// "switched"/"aborted"), instantaneous spans for refused claims
// ("rejected") and lock back-offs ("lock-backoff").
func (p *Protocol) SetTrace(t *tracing.Tracer) {
	p.trace = t
}

var _ construct.Strategy = (*Protocol)(nil)

// Join implements construct.Strategy using the minimum-depth join rule of
// Section 3.3. New members always start low in the tree (their BTP is zero)
// and climb only by staying and contributing.
func (p *Protocol) Join(tree *overlay.Tree, m *overlay.Member, now time.Duration) error {
	if err := p.join.Join(tree, m, now); err != nil {
		return err
	}
	if p.cfg.Referees != nil {
		p.cfg.Referees.Enroll(m, now)
	}
	return nil
}

// Start schedules the first switching check for member m. The churn driver
// calls this right after a successful join.
func (p *Protocol) Start(sim *eventsim.Simulator, m *overlay.Member) {
	p.scheduleCheck(sim, m, p.cfg.SwitchInterval)
}

func (p *Protocol) scheduleCheck(sim *eventsim.Simulator, m *overlay.Member, after time.Duration) {
	id := m.ID
	sim.ScheduleAfter(after, func(s *eventsim.Simulator) {
		p.check(s, id)
	})
}

// check runs one switching-interval comparison for the member with the given
// ID, if it is still alive.
func (p *Protocol) check(sim *eventsim.Simulator, id overlay.MemberID) {
	m := p.tree.Member(id)
	if m == nil {
		return // departed; let the timer chain die
	}
	switch p.tryInitiateSwitch(sim, m) {
	case switchStarted:
		// The completion handler reschedules the periodic check.
	case switchBlocked:
		// Locked neighbourhood: back off and re-check the condition, per
		// Section 3.3.
		p.LockFailures++
		p.met.backoffs.Inc()
		p.scheduleCheck(sim, m, p.cfg.LockBackoff)
	case switchNotNeeded:
		p.scheduleCheck(sim, m, p.cfg.SwitchInterval)
	}
}

type switchOutcome int

const (
	switchNotNeeded switchOutcome = iota + 1
	switchBlocked
	switchStarted
)

// shouldSwitch evaluates the BTP switching condition for m against its
// current parent: BTP(m) > BTP(parent) and bandwidth(m) >= bandwidth(parent).
// The source is never displaced (it holds an infinite BTP by definition).
func (p *Protocol) shouldSwitch(m *overlay.Member, now time.Duration) bool {
	parent := m.Parent()
	if parent == nil || parent == p.tree.Root() || !m.Attached() {
		return false
	}
	// The guard compares ADVERTISED bandwidths: without referees lies are
	// undetectable, which is exactly the attack surface Section 3.4 closes.
	bwChild, bwParent := m.Bandwidth, parent.Bandwidth
	if r := p.cfg.Referees; r != nil {
		bwChild, bwParent = r.ClaimedBandwidth(m), r.ClaimedBandwidth(parent)
	}
	if !p.cfg.DisableBandwidthGuard && bwChild < bwParent {
		// Comparing bandwidths first avoids useless switches: a
		// lower-bandwidth child would eventually be overtaken and demoted
		// again.
		return false
	}
	return p.claimedBTP(m, now) > p.claimedBTP(parent, now)
}

// claimedBTP returns the BTP a member advertises. Honest members advertise
// their true BTP; cheaters (see Referees.MarkCheater) inflate it.
func (p *Protocol) claimedBTP(m *overlay.Member, now time.Duration) float64 {
	if r := p.cfg.Referees; r != nil {
		return r.ClaimedBTP(m, now)
	}
	return m.BTP(now)
}

// tryInitiateSwitch checks the switching condition and, when met, locks the
// relevant node set and schedules the actual exchange after the switch
// latency.
func (p *Protocol) tryInitiateSwitch(sim *eventsim.Simulator, m *overlay.Member) switchOutcome {
	now := sim.Now()
	if !p.shouldSwitch(m, now) {
		return switchNotNeeded
	}
	parent := m.Parent()
	// Referee verification: the parent verifies the child's claimed BTP
	// before yielding its position (Section 3.4).
	if r := p.cfg.Referees; r != nil && !p.cfg.SkipVerification {
		if !r.VerifyBTP(m, p.claimedBTP(m, now), now) {
			p.Rejected++
			p.met.rejected.Inc()
			p.trace.Start(tracing.KindSwitch, int64(m.ID), now).
				AttrInt("parent", int64(parent.ID)).End(now, "rejected")
			return switchNotNeeded
		}
	}
	grand := parent.Parent()
	if grand == nil {
		return switchNotNeeded // parent is the root; nothing to do
	}
	lockSet := p.lockSet(m, parent, grand)
	p.nextOp++
	op := p.nextOp
	if !p.tree.Lock(op, lockSet...) {
		p.trace.Start(tracing.KindSwitch, int64(m.ID), now).
			AttrInt("parent", int64(parent.ID)).End(now, "lock-backoff")
		return switchBlocked
	}
	mID, parentID := m.ID, parent.ID
	sp := p.trace.Start(tracing.KindSwitch, int64(m.ID), now).
		AttrInt("parent", int64(parentID)).AttrInt("depth", int64(m.Depth()))
	sim.ScheduleAfter(p.cfg.SwitchLatency, func(s *eventsim.Simulator) {
		p.completeSwitch(s, op, mID, parentID, lockSet, sp)
	})
	return switchStarted
}

// lockSet gathers the nodes a switch must hold: the initiator, its parent,
// grandparent, all of its children and all of its siblings.
func (p *Protocol) lockSet(m, parent, grand *overlay.Member) []*overlay.Member {
	set := make([]*overlay.Member, 0, 3+m.NumChildren()+parent.NumChildren())
	set = append(set, m, parent, grand)
	m.VisitChildren(func(c *overlay.Member) { set = append(set, c) })
	parent.VisitChildren(func(s *overlay.Member) {
		if s != m {
			set = append(set, s)
		}
	})
	return set
}

// completeSwitch performs the structural exchange once the coordination
// latency has elapsed, re-validating that the locked neighbourhood is still
// what the initiator saw (members may have failed in the meantime).
func (p *Protocol) completeSwitch(sim *eventsim.Simulator, op int64, mID, parentID overlay.MemberID, lockSet []*overlay.Member, sp *tracing.SpanBuilder) {
	defer p.tree.Unlock(op, lockSet...)
	m := p.tree.Member(mID)
	parent := p.tree.Member(parentID)
	valid := m != nil && parent != nil && m.Attached() && parent.Attached() &&
		m.Parent() == parent && parent.Parent() != nil
	if valid && !p.shouldSwitch(m, sim.Now()) {
		valid = false // condition evaporated (e.g. ages shifted after a rejoin)
	}
	if !valid {
		p.Aborted++
		p.met.aborts.Inc()
		sp.End(sim.Now(), "aborted")
		if m != nil {
			p.scheduleCheck(sim, m, p.cfg.SwitchInterval)
		}
		return
	}
	if err := p.performExchange(sim, m, parent); err != nil {
		// The pre-validated exchange cannot fail structurally; if it does,
		// surface loudly in development but keep the overlay consistent.
		panic(fmt.Sprintf("rost: exchange invariant broken: %v", err))
	}
	p.Switches++
	p.met.switches.Inc()
	p.met.promDepth.Observe(float64(m.Depth()))
	sp.End(sim.Now(), "switched")
	if p.cfg.OnSwitch != nil {
		p.cfg.OnSwitch(sim.Now(), m.ID, parent.ID)
	}
	p.scheduleCheck(sim, m, p.cfg.SwitchInterval)
}

// performExchange swaps m with its parent following Figure 2.
func (p *Protocol) performExchange(sim *eventsim.Simulator, m, parent *overlay.Member) error {
	now := sim.Now()
	grand := parent.Parent()
	siblings := make([]*overlay.Member, 0, parent.NumChildren()-1)
	parent.VisitChildren(func(s *overlay.Member) {
		if s != m {
			siblings = append(siblings, s)
		}
	})
	childrenOfM := m.Children()

	// Dismantle the neighbourhood. Detached members keep their subtrees.
	for _, c := range childrenOfM {
		if err := p.tree.Detach(c); err != nil {
			return fmt.Errorf("detach child %d: %w", c.ID, err)
		}
	}
	for _, s := range siblings {
		if err := p.tree.Detach(s); err != nil {
			return fmt.Errorf("detach sibling %d: %w", s.ID, err)
		}
	}
	if err := p.tree.Detach(m); err != nil {
		return fmt.Errorf("detach initiator: %w", err)
	}
	if err := p.tree.Detach(parent); err != nil {
		return fmt.Errorf("detach parent: %w", err)
	}

	// Rebuild: m under the grandparent, parent and former siblings under m.
	// With the bandwidth guard active m always has capacity for all of them
	// (its degree is at least its former parent's); without the guard
	// (ablation) the leftovers rejoin through the normal procedure.
	if err := p.tree.Attach(m, grand); err != nil {
		return fmt.Errorf("promote initiator: %w", err)
	}
	m.Reconnections++
	rehome := make([]*overlay.Member, 0, 1+len(siblings))
	rehome = append(rehome, parent)
	rehome = append(rehome, siblings...)
	for _, n := range rehome {
		n.Reconnections++
		if m.HasSpare() {
			if err := p.tree.Attach(n, m); err != nil {
				return fmt.Errorf("re-adopt %d under promoted node: %w", n.ID, err)
			}
			continue
		}
		if err := p.join.Join(p.tree, n, now); err != nil {
			p.retryJoin(sim, n.ID)
		}
	}
	// m's former children go to the demoted parent, smallest BTP first; the
	// largest-BTP overflow reconnects up to m (Figure 2 keeps f, the largest
	// BTP, on the promoted node). Anyone who fits nowhere rejoins normally.
	sort.Slice(childrenOfM, func(i, j int) bool {
		return childrenOfM[i].BTP(now) < childrenOfM[j].BTP(now)
	})
	for _, c := range childrenOfM {
		c.Reconnections++
		target := parent
		if !target.Attached() || !target.HasSpare() {
			target = m
		}
		if target.Attached() && target.HasSpare() {
			if err := p.tree.Attach(c, target); err != nil {
				return fmt.Errorf("re-adopt child %d: %w", c.ID, err)
			}
			continue
		}
		if err := p.join.Join(p.tree, c, now); err != nil {
			// Saturated overlay (vanishingly rare): retry until a slot opens.
			p.retryJoin(sim, c.ID)
			continue
		}
	}
	return nil
}

// retryJoin periodically re-attempts a rejoin for a member stranded by a
// saturated overlay.
func (p *Protocol) retryJoin(sim *eventsim.Simulator, id overlay.MemberID) {
	sim.ScheduleAfter(5*time.Second, func(s *eventsim.Simulator) {
		m := p.tree.Member(id)
		if m == nil || m.Attached() {
			return
		}
		if err := p.join.Join(p.tree, m, s.Now()); err != nil {
			p.retryJoin(s, id)
		}
	})
}
