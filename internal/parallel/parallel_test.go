package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestRunOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Run(workers, 25, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 25 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(8, 0, func(int) (string, error) { return "", errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("Run over zero units: %v, %v", got, err)
	}
}

func TestRunLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 2, 8} {
		_, err := Run(workers, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("unit body %d: %w", i, boom)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error chain lost: %v", workers, err)
		}
		if !strings.HasPrefix(err.Error(), "unit 7:") {
			t.Fatalf("workers=%d: error %q does not name the lowest failed unit", workers, err)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, err := Run(3, 64, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent units, want <= 3", p)
	}
}
