package live

import (
	"omcast/internal/faultnet"
	"omcast/internal/wire"
)

// defaultForgeFactor scales the "btp" forgery when the rule leaves
// ForgeFactor zero: strong enough that a single forged claim outruns any
// honest bandwidth's allowed growth.
const defaultForgeFactor = 50

// forgeBytes applies the rule's field-level forgery to a datagram: the
// in-flight adversary that rewrites protocol claims instead of flipping bits.
// It returns the forged datagram and whether anything changed. Datagrams that
// do not decode, or whose type the forge kind does not target, pass through
// untouched — the forger is a protocol-aware attacker, not a fuzzer (Corrupt
// models the latter).
func forgeBytes(rule faultnet.Rule, data []byte) ([]byte, bool) {
	if rule.Forge == "" {
		return data, false
	}
	env, err := wire.Decode(data)
	if err != nil {
		return data, false
	}
	switch rule.Forge {
	case faultnet.ForgeBTP:
		if env.Type != wire.TypeHeartbeat && env.Type != wire.TypeSwitchPropose {
			return data, false
		}
		f := rule.ForgeFactor
		if f <= 0 {
			f = defaultForgeFactor
		}
		// claim' = claim*f + f: inflated even when the genuine claim is still
		// zero, so the very first heartbeat already lies.
		env.BTP = env.BTP*f + f
	case faultnet.ForgeRepair:
		if env.Type != wire.TypeRepairRequest && env.Type != wire.TypeELN {
			return data, false
		}
		// Invert the range: wire validation at the receiver rejects it and
		// attributes the misbehavior to the (byzantine) sender.
		env.FirstMissing = env.LastMissing + 5
	default:
		return data, false
	}
	forged, err := wire.Encode(env)
	if err != nil {
		return data, false
	}
	return forged, true
}

// corruptBytes flips one bit of the datagram at the decision's deterministic
// position. Empty datagrams pass through.
func corruptBytes(dec faultnet.Decision, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	pos := int(dec.CorruptPos * float64(len(out)))
	if pos >= len(out) {
		pos = len(out) - 1
	}
	bit := uint(dec.CorruptBit * 8)
	if bit > 7 {
		bit = 7
	}
	out[pos] ^= 1 << bit
	return out
}
