package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"omcast/internal/wire"
)

// sinkTransport is a goroutine-free Transport for guard unit tests: sends are
// recorded, never delivered.
type sinkTransport struct {
	addr wire.Addr

	mu   sync.Mutex
	sent []wire.Envelope
}

func (s *sinkTransport) Addr() wire.Addr { return s.addr }

func (s *sinkTransport) Send(to wire.Addr, data []byte) error {
	env, err := wire.Detect(data).Decode(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.sent = append(s.sent, env)
	s.mu.Unlock()
	return nil
}

func (s *sinkTransport) SetHandler(func(data []byte)) {}
func (s *sinkTransport) Close() error                 { return nil }

func (s *sinkTransport) sentTo(to wire.Addr) []wire.Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.Envelope(nil), s.sent...)
}

// newGuardNode builds an unstarted node over a sink transport: handlers can
// be driven directly without any background loops running.
func newGuardNode(mutate func(cfg *Config)) (*Node, *sinkTransport) {
	cfg := Config{Bandwidth: 3}
	if mutate != nil {
		mutate(&cfg)
	}
	tr := &sinkTransport{addr: "self"}
	return New(cfg, tr), tr
}

// attachTo puts the node into an attached state under the given parent,
// as the Accept handler would.
func attachTo(n *Node, parent wire.Addr) {
	n.mu.Lock()
	n.attached = true
	n.parent = parent
	n.parentSeen = time.Now()
	n.attachedAt = n.parentSeen
	n.depth = 2
	n.joinedAt = time.Now()
	n.mu.Unlock()
}

func envBytes(t *testing.T, env wire.Envelope) []byte {
	t.Helper()
	b, err := wire.Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

func TestGuardRateLimitsRequests(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.GuardRequestRate = 0.001 // effectively no refill within the test
		cfg.GuardRequestBurst = 3
		cfg.GuardQuarantineScore = 1000 // keep quarantine out of this test
	})
	req := wire.Envelope{Type: wire.TypeMembershipRequest, From: "flooder"}
	for i := 0; i < 3; i++ {
		if !n.guardAdmit(req) {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if n.guardAdmit(req) {
		t.Fatal("request over burst admitted")
	}
	if got := n.Stats().GuardRateLimited; got != 1 {
		t.Fatalf("GuardRateLimited = %d, want 1", got)
	}
	// Non-request types are never metered: the stream must not be throttled.
	if !n.guardAdmit(wire.Envelope{Type: wire.TypePacket, From: "flooder", Packet: 1}) {
		t.Fatal("stream packet denied by the request limiter")
	}
}

func TestGuardScoreDecays(t *testing.T) {
	p := &guardPeer{score: 10, scoreAt: time.Now().Add(-4 * time.Second)}
	p.decayScoreLocked(2, time.Now()) // 2 points/s over 4s
	if p.score > 2.1 || p.score < 1.9 {
		t.Fatalf("score after decay = %v, want ~2", p.score)
	}
	p.scoreAt = time.Now().Add(-time.Hour)
	p.decayScoreLocked(2, time.Now())
	if p.score != 0 {
		t.Fatalf("score decayed below zero: %v", p.score)
	}
}

func TestGuardQuarantinesWireRejecters(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.GuardQuarantineScore = 7 // two wire rejects (4 points each) cross it
	})
	// Give the offender a membership record: quarantine must purge it.
	n.mu.Lock()
	n.membership["evil"] = memberRecord{info: wire.MemberInfo{Addr: "evil"}, seen: time.Now()}
	n.mu.Unlock()

	n.noteWireReject("evil")
	if n.Stats().QuarantinedPeers != 0 {
		t.Fatal("quarantined after a single reject")
	}
	n.noteWireReject("evil")
	s := n.Stats()
	if s.GuardQuarantines != 1 || s.QuarantinedPeers != 1 {
		t.Fatalf("quarantines=%d quarantined=%d, want 1/1", s.GuardQuarantines, s.QuarantinedPeers)
	}
	if s.KnownMembers != 0 {
		t.Fatal("quarantine did not purge the membership record")
	}
	// Everything from a quarantined peer is dropped before dispatch.
	if n.guardAdmit(wire.Envelope{Type: wire.TypeHeartbeat, From: "evil"}) {
		t.Fatal("quarantined peer's datagram admitted")
	}
	if got := n.Stats().GuardQuarantineDrops; got != 1 {
		t.Fatalf("GuardQuarantineDrops = %d, want 1", got)
	}
	// Gossip must not re-introduce the peer while the sentence runs.
	n.mergeMembers("other", []wire.MemberInfo{{Addr: "evil", Spare: 5}})
	if n.Stats().KnownMembers != 0 {
		t.Fatal("gossip re-introduced a quarantined peer")
	}
}

func TestGuardQuarantiningParentDetaches(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.GuardQuarantineScore = 7
	})
	attachTo(n, "p")
	n.noteWireReject("p")
	n.noteWireReject("p")
	s := n.Stats()
	if s.Attached {
		t.Fatal("still attached to a quarantined parent")
	}
	if s.Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1 (parent-failure path must run)", s.Rejoins)
	}
}

func TestGuardBTPAudit(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.GuardQuarantineScore = 1000 // isolate the audit decision
	})
	hb := func(btp float64) wire.Envelope {
		return wire.Envelope{Type: wire.TypeHeartbeat, From: "peer", Bandwidth: 3, BTP: btp}
	}
	// First claim is the baseline, whatever it is.
	if !n.guardAdmit(hb(10)) {
		t.Fatal("baseline claim denied")
	}
	// Honest growth (well under bw*dt*slack + grace) passes.
	if !n.guardAdmit(hb(10.5)) {
		t.Fatal("honest growth denied")
	}
	// A jump no bandwidth could produce fails.
	if n.guardAdmit(hb(1e6)) {
		t.Fatal("forged BTP jump admitted")
	}
	if got := n.Stats().GuardAuditFails; got != 1 {
		t.Fatalf("GuardAuditFails = %d, want 1", got)
	}
	// The failed claim must not have ratcheted the baseline: the same forged
	// value keeps failing.
	if n.guardAdmit(hb(1e6)) {
		t.Fatal("forged BTP admitted on retry — baseline advanced on a failed claim")
	}
	// Shrinking claims always pass (peer restart resets its clock).
	if !n.guardAdmit(hb(0)) {
		t.Fatal("shrinking claim denied")
	}
	// SwitchPropose claims are audited against the same trajectory.
	if n.guardAdmit(wire.Envelope{Type: wire.TypeSwitchPropose, From: "peer", Bandwidth: 3, BTP: 1e6}) {
		t.Fatal("forged SwitchPropose BTP admitted")
	}
}

func TestGuardTableEviction(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.MembershipLimit = 2 // guard table cap = 8
		cfg.GuardQuarantineScore = 7
	})
	// Quarantine one peer, then flood the table with strangers.
	n.noteWireReject("evil")
	n.noteWireReject("evil")
	for i := 0; i < 20; i++ {
		n.guardAdmit(wire.Envelope{Type: wire.TypeHeartbeat, From: wire.Addr(fmt.Sprintf("g%02d", i))})
	}
	n.mu.Lock()
	size := len(n.guard)
	_, evilKept := n.guard["evil"]
	n.mu.Unlock()
	if size > 8 {
		t.Fatalf("guard table grew to %d, cap is 8", size)
	}
	if !evilKept {
		t.Fatal("eviction dropped the quarantined record while strangers were available")
	}
	if n.Stats().QuarantinedPeers != 1 {
		t.Fatal("quarantine lost under table pressure")
	}
}

func TestRecoveryGroupExcludesQuarantined(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.GuardQuarantineScore = 7
	})
	attachTo(n, "p")
	n.noteWireReject("q")
	n.noteWireReject("q")
	// Simulate the re-learn race: the record sneaks back into membership
	// after sentencing (e.g. a merge that raced the conviction).
	now := time.Now()
	n.mu.Lock()
	for _, a := range []wire.Addr{"a", "b", "q"} {
		n.membership[a] = memberRecord{info: wire.MemberInfo{Addr: a}, seen: now}
	}
	n.mu.Unlock()
	group := n.recoveryGroup()
	for _, a := range group {
		if a == "q" {
			t.Fatal("quarantined peer selected into the recovery group")
		}
	}
	if len(group) != 2 {
		t.Fatalf("recovery group = %v, want the 2 honest members", group)
	}
}

func TestRepairRequestRangeRejectedAtHandler(t *testing.T) {
	n, tr := newGuardNode(nil)
	n.mu.Lock()
	n.highest = 100
	n.buffer[50] = nil
	n.mu.Unlock()
	cases := []wire.Envelope{
		{Type: wire.TypeRepairRequest, From: "r", FirstMissing: 9, LastMissing: 3},
		{Type: wire.TypeRepairRequest, From: "r", FirstMissing: -5, LastMissing: 3},
		{Type: wire.TypeRepairRequest, From: "r", FirstMissing: 0, LastMissing: wire.MaxRepairSpan + 10},
	}
	for _, env := range cases {
		n.handleRepairRequest(env)
	}
	s := n.Stats()
	if s.GuardImplausible != int64(len(cases)) {
		t.Fatalf("GuardImplausible = %d, want %d", s.GuardImplausible, len(cases))
	}
	if s.RepairsServed != 0 || len(tr.sentTo("r")) != 0 {
		t.Fatal("rejected repair request was partially served")
	}
}

func TestRepairRequestScanClamped(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.BufferPackets = 16
		cfg.RecoveryGroup = 1 // this node covers the whole stripe space
	})
	n.mu.Lock()
	n.highest = 1000
	for seq := int64(990); seq <= 1000; seq++ {
		n.buffer[seq] = nil
	}
	n.mu.Unlock()
	// A wire-legal but buffer-impossible range: the scan must clamp to
	// [highest-BufferPackets, highest] rather than walk all 65k sequences.
	n.handleRepairRequest(wire.Envelope{
		Type: wire.TypeRepairRequest, From: "r",
		FirstMissing: 0, LastMissing: wire.MaxRepairSpan - 1,
	})
	if got := n.Stats().RepairsServed; got != 11 {
		t.Fatalf("RepairsServed = %d, want the 11 buffered packets", got)
	}
}

func TestMembershipReplyLimitClamped(t *testing.T) {
	n, tr := newGuardNode(func(cfg *Config) {
		cfg.MembershipLimit = 2
	})
	attachTo(n, "p")
	now := time.Now()
	n.mu.Lock()
	for i := 0; i < 6; i++ {
		a := wire.Addr(fmt.Sprintf("m%d", i))
		n.membership[a] = memberRecord{info: wire.MemberInfo{Addr: a}, seen: now}
	}
	n.mu.Unlock()
	n.handleMembershipRequest(wire.Envelope{
		Type: wire.TypeMembershipRequest, From: "greedy", Limit: wire.MaxLimit,
	})
	var reply *wire.Envelope
	for _, env := range tr.sentTo("greedy") {
		if env.Type == wire.TypeMembershipReply {
			reply = &env
			break
		}
	}
	if reply == nil {
		t.Fatal("no membership reply sent")
	}
	if len(reply.Members) > 2 {
		t.Fatalf("reply carries %d members, want <= the partial-view cap 2", len(reply.Members))
	}
}

func TestPacketImplausibilityClamps(t *testing.T) {
	t.Run("at-source", func(t *testing.T) {
		n, _ := newGuardNode(func(cfg *Config) { cfg.Source = true })
		n.acceptPacket(wire.Envelope{Type: wire.TypePacket, From: "evil", Packet: 5}, false)
		s := n.Stats()
		if s.PacketsReceived != 0 || s.GuardImplausible != 1 {
			t.Fatalf("source ingested a stream packet: %+v", s)
		}
	})
	t.Run("not-parent", func(t *testing.T) {
		n, _ := newGuardNode(nil)
		attachTo(n, "p")
		n.acceptPacket(wire.Envelope{Type: wire.TypePacket, From: "p", Packet: 0}, false)
		n.acceptPacket(wire.Envelope{Type: wire.TypePacket, From: "evil", Packet: 1}, false)
		s := n.Stats()
		if s.PacketsReceived != 1 || s.GuardImplausible != 1 {
			t.Fatalf("non-parent stream packet accepted: %+v", s)
		}
		// Repair data is exempt: it legitimately arrives from group members.
		n.acceptPacket(wire.Envelope{Type: wire.TypeRepairData, From: "helper", Packet: 1}, true)
		if got := n.Stats().PacketsRepaired; got != 1 {
			t.Fatalf("repair data from a non-parent rejected: repaired=%d", got)
		}
	})
	t.Run("jump-and-resync", func(t *testing.T) {
		n, _ := newGuardNode(nil)
		attachTo(n, "p")
		n.acceptPacket(wire.Envelope{Type: wire.TypePacket, From: "p", Packet: 0}, false)
		jump := int64(1 + 4*n.cfg.BufferPackets + 10)
		for i := 0; i < jumpResyncStreak-1; i++ {
			n.acceptPacket(wire.Envelope{Type: wire.TypePacket, From: "p", Packet: jump + int64(i)}, false)
		}
		s := n.Stats()
		if s.PacketsReceived != 1 || s.GuardImplausible != int64(jumpResyncStreak-1) {
			t.Fatalf("jump packets accepted before the resync streak: %+v", s)
		}
		// The streak-th consecutive parent jump is a genuine discontinuity.
		n.acceptPacket(wire.Envelope{Type: wire.TypePacket, From: "p", Packet: jump + jumpResyncStreak}, false)
		if got := n.Stats().PacketsReceived; got != 2 {
			t.Fatal("parent stream discontinuity never resynchronised")
		}
	})
	t.Run("repair-below-window", func(t *testing.T) {
		n, _ := newGuardNode(nil)
		attachTo(n, "p")
		n.mu.Lock()
		n.highest = 10000
		n.streamSeen = true
		n.mu.Unlock()
		n.acceptPacket(wire.Envelope{Type: wire.TypeRepairData, From: "helper", Packet: 1}, true)
		s := n.Stats()
		if s.PacketsRepaired != 0 || s.GuardImplausible != 1 {
			t.Fatalf("ancient repair data accepted: %+v", s)
		}
	})
}

func TestELNRangeClamped(t *testing.T) {
	n, _ := newGuardNode(nil)
	attachTo(n, "p")
	n.mu.Lock()
	n.highest = 100
	n.streamSeen = true
	n.mu.Unlock()
	// A plausible parent ELN advances the suppression mark.
	n.handleELN(wire.Envelope{Type: wire.TypeELN, From: "p", FirstMissing: 50, LastMissing: 120})
	n.mu.Lock()
	mark := n.upstreamRepair
	n.mu.Unlock()
	if mark != 120 {
		t.Fatalf("upstreamRepair = %d, want 120", mark)
	}
	// A forged range far beyond the head must not suppress our repairs.
	n.handleELN(wire.Envelope{Type: wire.TypeELN, From: "p", FirstMissing: 0, LastMissing: 1 << 40})
	n.mu.Lock()
	mark = n.upstreamRepair
	n.mu.Unlock()
	if mark != 120 {
		t.Fatalf("forged ELN moved upstreamRepair to %d", mark)
	}
	if got := n.Stats().GuardImplausible; got != 1 {
		t.Fatalf("GuardImplausible = %d, want 1", got)
	}
}

func TestWireRejectAttribution(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.GuardQuarantineScore = 7
	})
	// An envelope that parses but fails validation names its sender; two of
	// them cross the quarantine threshold.
	bad := envBytes(t, wire.Envelope{
		Type: wire.TypeRepairRequest, From: "evil", FirstMissing: 9, LastMissing: 3,
	})
	n.onDatagram(bad)
	n.onDatagram(bad)
	s := n.Stats()
	if s.WireRejects != 2 {
		t.Fatalf("WireRejects = %d, want 2", s.WireRejects)
	}
	if s.GuardQuarantines != 1 {
		t.Fatalf("GuardQuarantines = %d, want 1", s.GuardQuarantines)
	}
	// Unattributable garbage is counted but charges no one.
	n.onDatagram([]byte("{not json"))
	s = n.Stats()
	if s.WireRejects != 3 || s.GuardQuarantines != 1 {
		t.Fatalf("unattributable reject mishandled: %+v", s)
	}
}

func TestDisableGuardBypasses(t *testing.T) {
	n, _ := newGuardNode(func(cfg *Config) {
		cfg.DisableGuard = true
		cfg.GuardRequestBurst = 1
		cfg.GuardRequestRate = 0.001
	})
	req := wire.Envelope{Type: wire.TypeMembershipRequest, From: "x"}
	for i := 0; i < 10; i++ {
		if !n.guardAdmit(req) {
			t.Fatal("DisableGuard did not bypass the limiter")
		}
	}
	n.noteWireReject("x")
	if got := n.Stats().GuardQuarantines; got != 0 {
		t.Fatalf("DisableGuard still quarantined: %d", got)
	}
}

func TestSwitchCommitShapeRejected(t *testing.T) {
	// The fuzzer's find: a SwitchCommit from the parent naming neither a
	// replaced child (Chain) nor a NewParent used to re-point the node at the
	// empty address — attached with no parent. It must be dropped and counted.
	n, _ := newGuardNode(nil)
	attachTo(n, "p")
	n.onDatagram(envBytes(t, wire.Envelope{Type: wire.TypeSwitchCommit, From: "p"}))
	s := n.Stats()
	if !s.Attached || s.Parent != "p" {
		t.Fatalf("shapeless switch commit re-pointed the node: attached=%t parent=%q", s.Attached, s.Parent)
	}
	if s.GuardImplausible != 1 {
		t.Fatalf("GuardImplausible = %d, want 1", s.GuardImplausible)
	}
	// A well-formed commit from the parent still re-points.
	n.onDatagram(envBytes(t, wire.Envelope{Type: wire.TypeSwitchCommit, From: "p", NewParent: "np"}))
	if s = n.Stats(); s.Parent != "np" {
		t.Fatalf("valid switch commit ignored: parent=%q", s.Parent)
	}
}
