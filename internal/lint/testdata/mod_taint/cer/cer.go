// Package cer stands in for the protocol-decision packages
// (Config.TaintProtocolPackages): any tainted argument entering a function
// here is a sink.
package cer

// Plan makes a recovery decision from an envelope kind.
func Plan(kind string) int {
	if kind == "join" {
		return 1
	}
	return 0
}
