package overlay

import (
	"testing"
	"time"

	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// TestSampleAllocCeiling pins Sample's steady-state allocation budget: zero.
// The per-call dedup map became the tree's epoch-stamped scratch in PR 5; the
// result slice itself is now a tree-owned reusable buffer (returned with
// capacity == length so caller appends copy). A regression here fails go
// test, not just the bench report.
func TestSampleAllocCeiling(t *testing.T) {
	tree, err := NewTree(0, 100, func(a, b topology.NodeID) time.Duration { return time.Millisecond })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		tree.NewMember(topology.NodeID(i), 0.5, time.Duration(i))
	}
	rng := xrand.New(1)
	// One warm call sizes the scratch buffers.
	if got := tree.Sample(rng, 100, nil); len(got) != 100 {
		t.Fatalf("warm sample returned %d members", len(got))
	}
	allocs := testing.AllocsPerRun(200, func() {
		if got := tree.Sample(rng, 100, nil); len(got) != 100 {
			t.Fatal("short sample")
		}
	})
	if allocs > 0 {
		t.Fatalf("Sample allocates %.1f times per call, want 0", allocs)
	}
}

// TestSampleResultAppendSafe pins the scratch-buffer contract: the returned
// slice has capacity == length, so a caller appending to it (construct's
// candidate list appends the root) gets a private copy instead of scribbling
// into the tree's scratch.
func TestSampleResultAppendSafe(t *testing.T) {
	tree, err := NewTree(0, 100, func(a, b topology.NodeID) time.Duration { return time.Millisecond })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tree.NewMember(topology.NodeID(i), 0.5, time.Duration(i))
	}
	rng := xrand.New(2)
	got := tree.Sample(rng, 50, nil)
	if cap(got) != len(got) {
		t.Fatalf("Sample returned cap %d != len %d; caller appends would alias the scratch", cap(got), len(got))
	}
	extended := append(got, tree.Root())
	again := tree.Sample(rng, 50, nil)
	if extended[len(extended)-1] != tree.Root() {
		t.Fatal("append result clobbered by the next Sample call")
	}
	_ = again
}

// TestCheckInvariantsAllocCeiling pins both invariant checkers at zero
// steady-state allocations: the incremental path walks the epoch-stamped
// dirty list, and the full path's former per-call seen map is an
// epoch-stamped scratch buffer.
func TestCheckInvariantsAllocCeiling(t *testing.T) {
	tree, err := NewTree(0, 100, func(a, b topology.NodeID) time.Duration { return time.Millisecond })
	if err != nil {
		t.Fatal(err)
	}
	parents := []*Member{tree.Root()}
	for i := 0; i < 2000; i++ {
		m := tree.NewMember(topology.NodeID(i), 2, time.Duration(i))
		if err := tree.Attach(m, parents[i%len(parents)]); err == nil {
			parents = append(parents, m)
		}
	}
	// Warm both scratch buffers.
	if err := tree.CheckInvariantsFull(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := tree.CheckInvariantsFull(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("CheckInvariantsFull allocates %.1f times per call, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("CheckInvariants allocates %.1f times per call, want 0", allocs)
	}
}
