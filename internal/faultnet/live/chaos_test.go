package live

import (
	"testing"
	"time"

	"omcast/internal/faultnet"
	"omcast/internal/tracing"
)

// TestChaosScenarios runs the whole resilience suite. Each subtest is one
// table entry from Scenarios; a failure prints the fault log and per-node
// stats so the seed reproduces the exact run.
func TestChaosScenarios(t *testing.T) {
	for _, scn := range Scenarios {
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			if raceEnabled && scn.Nodes > 16 {
				// The race detector serializes the 65 node runtimes so hard
				// the overlay cannot form at this scale; the 9-node byzantine
				// scenarios give the machinery its race coverage.
				t.Skipf("%d-node scenario skipped under -race", scn.Nodes)
			}
			rep, err := Run(scn)
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			if !rep.OK() {
				t.Errorf("%s\n--- plan\n%s--- fault log\n%s--- link stats\n%s",
					rep.Summary(), rep.Plan, rep.FaultLog, rep.FaultStats)
				for _, nr := range rep.Nodes {
					s := nr.Stats
					t.Logf("%s attached=%t pkts=%d starving=%.3f repairs=%d suppressed=%d stalls=%d",
						nr.Addr, s.Attached, s.PacketsReceived, s.StarvingRatio(),
						s.RepairRequests, s.RepairsSuppressed, s.Stalls)
				}
			}
		})
	}
}

// TestChaosPlanDeterminism: the expanded fault plan and the decision streams
// are pure functions of the scenario — no live run required to prove it.
func TestChaosPlanDeterminism(t *testing.T) {
	for _, scn := range Scenarios {
		p1 := scn.scaledSchedule().FormatPlan()
		p2 := scn.scaledSchedule().FormatPlan()
		if p1 != p2 {
			t.Errorf("%s: plan not reproducible:\n%s\nvs\n%s", scn.Name, p1, p2)
		}
		links := []string{"source>n00", "n00>n01", "n01>source"}
		rule := faultnet.Rule{Drop: 0.2, Duplicate: 0.1, Reorder: 0.1}
		t1 := faultnet.DecisionPreview(scn.Seed, links, 64, rule)
		t2 := faultnet.DecisionPreview(scn.Seed, links, 64, rule)
		if t1 != t2 {
			t.Errorf("%s: decision preview not reproducible", scn.Name)
		}
	}
}

// TestChaosRunReproducible runs a schedule-only scenario (crash + restart —
// no probabilistic per-datagram decisions) twice with the same seed and
// demands byte-identical fault logs and plans. This is the live half of the
// reproducibility contract; TestCannedTrafficDeterminism covers the
// probabilistic half where the traffic sequence is pinned.
func TestChaosRunReproducible(t *testing.T) {
	scn := Scenario{
		Name:     "repro-crash",
		Nodes:    4,
		Seed:     777,
		Warmup:   3 * time.Second,
		Duration: 1300 * time.Millisecond,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(300 * time.Millisecond), Until: d(800 * time.Millisecond),
					Action: faultnet.ActionCrash, Node: "n01"},
			},
		},
		Bounds: Bounds{RequireAllAttached: true, RecoverWithin: 2 * time.Second},
	}
	r1, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Report{r1, r2} {
		if !r.OK() {
			t.Fatalf("%s\n--- fault log\n%s", r.Summary(), r.FaultLog)
		}
	}
	if r1.Plan != r2.Plan {
		t.Errorf("plans diverged:\n%s\nvs\n%s", r1.Plan, r2.Plan)
	}
	if r1.FaultLog != r2.FaultLog {
		t.Errorf("fault logs diverged between same-seed runs:\n--- run1\n%s--- run2\n%s",
			r1.FaultLog, r2.FaultLog)
	}
	if r1.FaultLog == "" {
		t.Error("empty fault log from a crash scenario")
	}
}

// TestChaosReportSpans runs a crash scenario and asserts the report carries
// the causal span record: every member's boot join episode from its flight
// recorder, and the injected fault window as an annotation span on the
// synthetic faultnet track.
func TestChaosReportSpans(t *testing.T) {
	scn := Scenario{
		Name:     "spans-crash",
		Nodes:    4,
		Seed:     778,
		Warmup:   3 * time.Second,
		Duration: 1300 * time.Millisecond,
		Schedule: faultnet.Schedule{
			Events: []faultnet.Event{
				{At: d(300 * time.Millisecond), Until: d(800 * time.Millisecond),
					Action: faultnet.ActionCrash, Node: "n01"},
			},
		},
		Bounds: Bounds{RequireAllAttached: true, RecoverWithin: 2 * time.Second},
	}
	rep, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("%s\n--- fault log\n%s", rep.Summary(), rep.FaultLog)
	}
	joins := make(map[string]bool)
	var crashSpan *tracing.Span
	for i, sp := range rep.Spans {
		if sp.Kind == tracing.KindJoin && sp.Outcome == "attached" {
			joins[sp.Node] = true
		}
		if sp.Kind == tracing.KindFault {
			if sp.Node != "faultnet" {
				t.Fatalf("fault span on node %q, want faultnet", sp.Node)
			}
			if sp.Outcome == "crash" {
				crashSpan = &rep.Spans[i]
			}
		}
	}
	// Four members plus the restarted incarnation of n01 all complete boot
	// joins; at minimum each member address appears once.
	for _, addr := range []string{"n00", "n01", "n02", "n03"} {
		if !joins[addr] {
			t.Errorf("no completed join span for %s", addr)
		}
	}
	if crashSpan == nil {
		t.Fatal("no crash fault-window span in report")
	}
	if got, want := crashSpan.Duration(), sc(500*time.Millisecond).Seconds(); got != want {
		t.Errorf("crash window duration = %v, want %v", got, want)
	}
}

// TestByzantinePlanReproducible pins the deterministic half of the byzantine
// scenarios: the expanded plan and the adversarial decision stream (corrupt
// positions, replay draws) are byte-stable functions of the seed. The live
// fault logs are traffic-timing-dependent (per-datagram draws follow delivery
// order), so reproducibility there is covered by the pinned-traffic test in
// the faultnet package, not re-asserted here.
func TestByzantinePlanReproducible(t *testing.T) {
	for _, name := range []string{
		"byzantine-btp-forge", "byzantine-repair-forge",
		"byzantine-corrupt", "byzantine-replay", "byzantine-64",
	} {
		scn := ScenarioByName(name)
		if scn == nil {
			t.Fatalf("scenario %s missing from suite", name)
		}
		if len(scn.Byzantine) == 0 {
			t.Errorf("%s: no byzantine members declared", name)
		}
		if p1, p2 := scn.Plan(), scn.Plan(); p1 != p2 {
			t.Errorf("%s: plan not reproducible:\n%s\nvs\n%s", name, p1, p2)
		}
		links := []string{"n61>source", "n62>n00", "n63>n01"}
		rule := faultnet.Rule{Corrupt: 0.3, Replay: 0.4, Forge: faultnet.ForgeBTP, ForgeFactor: 50}
		if t1, t2 := faultnet.DecisionPreview(scn.Seed, links, 64, rule),
			faultnet.DecisionPreview(scn.Seed, links, 64, rule); t1 != t2 {
			t.Errorf("%s: adversarial decision preview not reproducible", name)
		}
	}
}
