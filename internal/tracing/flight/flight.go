// Package flight is the live-node flight recorder: a fixed-size ring
// buffer of completed spans, cheap enough to leave on in production and
// dumpable over HTTP at /debug/trace next to /metrics. Like a cockpit
// recorder it keeps the last N episodes; older spans are overwritten, and
// the dump reports how many were recorded in total so truncation is
// visible. Mirrors the internal/metrics (sim) vs internal/metrics/live
// split: the tracing core stays deterministic and lock-free, this
// subpackage owns the mutex.
package flight

import (
	"fmt"
	"net/http"
	"sync"

	"omcast/internal/tracing"
)

// DefaultSize is the ring capacity when the caller passes none.
const DefaultSize = 4096

// Ring is a fixed-capacity span recorder. The zero value is unusable; use
// NewRing. A nil *Ring is a valid disabled recorder (Record is a no-op),
// so callers can pass it straight into node configuration unconditionally.
type Ring struct {
	mu    sync.Mutex
	buf   []tracing.Span
	next  int
	full  bool
	total uint64
}

// NewRing returns a recorder keeping the most recent size spans
// (DefaultSize when size <= 0).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultSize
	}
	return &Ring{buf: make([]tracing.Span, size)}
}

// Record implements tracing.Recorder.
func (r *Ring) Record(sp tracing.Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []tracing.Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]tracing.Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]tracing.Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many spans were recorded over the ring's lifetime
// (including ones already overwritten).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Handler serves the ring as a JSONL span dump: one envelope line per
// retained span, oldest first, preceded by a comment-free X-Trace-Total
// header carrying the lifetime count.
func Handler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		spans := r.Snapshot()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Total", fmt.Sprintf("%d", r.Total()))
		if err := tracing.WriteJSONL(w, spans); err != nil {
			// The connection died mid-dump; nothing useful to do.
			return
		}
	})
}
