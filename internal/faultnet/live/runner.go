package live

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"omcast/internal/faultnet"
	"omcast/internal/node"
	"omcast/internal/tracing"
	"omcast/internal/tracing/flight"
	"omcast/internal/wire"
)

// sc scales a scenario duration for the race detector (matching the node
// package's test profile factor).
func sc(d time.Duration) time.Duration {
	if raceEnabled {
		return d * 4
	}
	return d
}

// Bounds are the recovery-time and delivery-continuity assertions a scenario
// makes about the overlay after running under faults. Zero values disable a
// bound.
type Bounds struct {
	// RequireAllAttached demands every (live) member holds a tree position
	// at scenario end.
	RequireAllAttached bool
	// AttachWithin demands all members attach within this much of scenario
	// start — the join-under-loss bound (faults are active from birth).
	AttachWithin time.Duration
	// MaxStarvingRatio caps each member's starved-slot fraction.
	MaxStarvingRatio float64
	// MinPacketsFrac demands each member received at least this fraction of
	// the packets the source emitted during the run.
	MinPacketsFrac float64
	// MaxRepairRequestsPerNode caps any single member's issued repair
	// requests — the storm bound.
	MaxRepairRequestsPerNode int64
	// MinRepairsSuppressedTotal demands the backoff gate actually absorbed
	// load (evidence the storm bound did work, not that no storm happened).
	MinRepairsSuppressedTotal int64
	// RecoverWithin, measured after the schedule's last change, demands all
	// members re-attach within the window (heartbeat-timeout + rejoin
	// bound for crash scenarios).
	RecoverWithin time.Duration
	// MinRejoinsTotal demands the fault actually disturbed the tree: at
	// least this many rejoins summed across members (proof a crash orphaned
	// someone rather than clipping a leaf).
	MinRejoinsTotal int64
	// MinQuarantinesTotal demands the guard layer actually convicted someone:
	// at least this many quarantine sentences summed across all nodes —
	// evidence a byzantine scenario's defense engaged, not that the attack
	// politely missed.
	MinQuarantinesTotal int64
	// MinWireRejectsTotal demands wire validation caught forged or corrupted
	// datagrams, summed across all nodes.
	MinWireRejectsTotal int64
	// MinAuditFailsTotal demands the BTP delta audit caught inflated claims,
	// summed across all nodes.
	MinAuditFailsTotal int64
	// MaxReassignTime, measured from the schedule's last source crash,
	// demands every honest member is re-attached within the window — the
	// fleet failover bound: orphans of a dead source must find a surviving
	// source's tree, not just eventually converge.
	MaxReassignTime time.Duration
	// MaxOutageRatio caps the mean starved-slot fraction across honest
	// members — the fleet continuity bound. Unlike MaxStarvingRatio (a
	// per-node cap) it bounds the aggregate outage a source failure is
	// allowed to inflict on the viewer population.
	MaxOutageRatio float64
}

// Scenario is one table-driven chaos run: an overlay size, a fault schedule
// and the bounds the overlay must hold under it. Durations are pre-scaling;
// the runner stretches them under -race.
type Scenario struct {
	Name  string
	About string
	// Nodes is the member count (sources are extra). SourceBW/NodeBW
	// shape the tree (defaults 3 and 3: forces interior nodes at 8+ members).
	Nodes    int
	SourceBW float64
	NodeBW   float64
	// Sources is the source count (default 1). The first source is named
	// "source"; extras are "source1", "source2", … Every member bootstraps
	// against all of them, so the overlay federates into one membership pool
	// and orphans of a killed source can fail over to a survivor's tree.
	Sources int
	Seed    int64
	// Warmup is the attach deadline before faults arm; zero arms the
	// schedule at birth (join-under-fault scenarios).
	Warmup time.Duration
	// BootDelay staggers member boots (n00 first) so early members join
	// first and sit high in the tree — lets a scenario crash a node that is
	// reliably interior rather than racing for tree position.
	BootDelay time.Duration
	// Duration is how long the armed schedule runs before final collection.
	Duration time.Duration
	// Schedule holds the scenario's faults; its offsets are scaled like the
	// durations. Seed is stamped from the scenario at run time.
	Schedule faultnet.Schedule
	Bounds   Bounds
	// Byzantine names members whose outbound links the schedule turns
	// adversarial (forge/corrupt/replay rules). They run honest protocol
	// code — the attack is modeled at the network layer — but honest peers
	// quarantine them, so per-node bounds and attachment checks exclude
	// them: the scenario asserts the *honest* overlay's continuity.
	Byzantine []string
}

// isSource reports whether an address names a source ("source", "source1",
// …). Member addresses are "nXX", so a prefix check is unambiguous.
func isSource(addr wire.Addr) bool { return strings.HasPrefix(string(addr), "source") }

// sourceAddrs returns the ordered source address list for a source count:
// "source" first (the historical single-source name), then "source1", …
func sourceAddrs(n int) []wire.Addr {
	out := make([]wire.Addr, n)
	out[0] = "source"
	for i := 1; i < n; i++ {
		out[i] = wire.Addr(fmt.Sprintf("source%d", i))
	}
	return out
}

// byzantine reports whether an address is in the scenario's byzantine set.
func (s Scenario) byzantine(addr wire.Addr) bool {
	for _, b := range s.Byzantine {
		if wire.Addr(b) == addr {
			return true
		}
	}
	return false
}

// scaledSchedule returns the schedule with seed stamped and every duration
// field (offsets, latencies) scaled for the race detector.
func (s Scenario) scaledSchedule() *faultnet.Schedule {
	sch := s.Schedule // shallow copy; slices re-built below
	sch.Seed = s.Seed
	sch.Links = append([]faultnet.LinkRule(nil), s.Schedule.Links...)
	sch.Events = make([]faultnet.Event, len(s.Schedule.Events))
	for i, ev := range s.Schedule.Events {
		ev.At = faultnet.Duration(sc(ev.At.D()))
		ev.Until = faultnet.Duration(sc(ev.Until.D()))
		sch.Events[i] = ev
	}
	return &sch
}

// Plan renders the scenario's expanded fault plan, scaled exactly as a run
// would scale it — a pure function of the scenario, no overlay required.
func (s Scenario) Plan() string { return s.scaledSchedule().FormatPlan() }

// NodeReport pairs an address with its final protocol stats. Byzantine marks
// members the scenario declared adversarial (excluded from per-node bounds).
type NodeReport struct {
	Addr      wire.Addr
	Stats     node.Stats
	Byzantine bool
}

// Report is a scenario run's outcome.
type Report struct {
	Scenario string
	Seed     int64
	// Plan is the expanded fault plan (pure function of the scenario).
	Plan string
	// FaultLog and FaultStats are the injection-layer records in canonical
	// order.
	FaultLog   string
	FaultStats string
	// AttachTime is how long all members took to attach (when measured).
	AttachTime time.Duration
	// RecoveryTime is how long re-attachment took after the last schedule
	// change (when measured).
	RecoveryTime time.Duration
	// ReassignTime is how long every honest member took to re-attach after
	// the schedule's last source crash (when MaxReassignTime is set) — the
	// fleet failover latency.
	ReassignTime time.Duration
	// Nodes holds final member stats sorted by address (source first).
	Nodes []NodeReport
	// Spans holds every causal span the run produced: per-node flight
	// recorder snapshots (source first, then members by address — rings
	// survive crash/restart, so a crashed node's pre-crash episodes are
	// kept) followed by fault-window annotation spans on a synthetic
	// "faultnet" track, so a timeline view shows which episodes overlap
	// which injected faults.
	Spans []tracing.Span
	// Failures lists violated bounds; empty means the scenario passed.
	Failures []string
}

// OK reports whether every bound held.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Summary renders a one-line verdict.
func (r *Report) Summary() string {
	if r.OK() {
		members := 0
		for _, nr := range r.Nodes {
			if !isSource(nr.Addr) {
				members++
			}
		}
		return fmt.Sprintf("%s seed=%d ok (%d nodes)", r.Scenario, r.Seed, members)
	}
	return fmt.Sprintf("%s seed=%d FAIL: %v", r.Scenario, r.Seed, r.Failures)
}

// Harness boots an overlay on an in-memory network behind a fault network
// and keeps crash/restarted nodes consistent with the schedule.
type Harness struct {
	sc    Scenario
	Net   *Network
	mem   *node.MemNetwork
	rate  float64
	hbInt time.Duration

	mu      sync.Mutex
	sources map[wire.Addr]*node.Node
	nodes   map[wire.Addr]*node.Node
	cfgs    map[wire.Addr]node.Config
	// rings are the per-address span flight recorders. A restarted node
	// reuses its address's ring, so one timeline spans its whole history
	// across crashes.
	rings  map[wire.Addr]*flight.Ring
	closed bool
}

// NewHarness builds the overlay (source + members, all attached to the fault
// network) without arming the schedule.
func NewHarness(scn Scenario) (*Harness, error) {
	if scn.Nodes <= 0 {
		scn.Nodes = 8
	}
	if scn.SourceBW <= 0 {
		scn.SourceBW = 3
	}
	if scn.NodeBW <= 0 {
		scn.NodeBW = 3
	}
	if scn.Sources <= 0 {
		scn.Sources = 1
	}
	h := &Harness{
		sc:      scn,
		mem:     node.NewMemNetwork(nil),
		sources: make(map[wire.Addr]*node.Node),
		nodes:   make(map[wire.Addr]*node.Node),
		cfgs:    make(map[wire.Addr]node.Config),
		rings:   make(map[wire.Addr]*flight.Ring),
		hbInt:   sc(20 * time.Millisecond),
		rate:    100,
	}
	if raceEnabled {
		h.rate = 25 // heartbeats stretched 4x; cut packet load to match
	}
	h.Net = NewNetwork(Options{
		Seed:     scn.Seed,
		Schedule: scn.scaledSchedule(),
		NodeHook: h.nodeHook,
	})

	base := node.Config{
		HeartbeatInterval: h.hbInt,
		GossipInterval:    h.hbInt * 5 / 4,
		StreamRate:        h.rate,
		BufferPackets:     512,
		RecoveryGroup:     3,
		PlaybackBuffer:    sc(500 * time.Millisecond),
		Seed:              scn.Seed,
	}

	srcs := sourceAddrs(scn.Sources)
	for _, a := range srcs {
		srcCfg := base
		srcCfg.Source = true
		srcCfg.Bandwidth = scn.SourceBW
		if err := h.boot(a, srcCfg); err != nil {
			h.Close()
			return nil, err
		}
	}
	for i := 0; i < scn.Nodes; i++ {
		cfg := base
		cfg.Bandwidth = scn.NodeBW
		cfg.Bootstrap = append([]wire.Addr(nil), srcs...)
		if err := h.boot(wire.Addr(fmt.Sprintf("n%02d", i)), cfg); err != nil {
			h.Close()
			return nil, err
		}
		if scn.BootDelay > 0 && i < scn.Nodes-1 {
			time.Sleep(sc(scn.BootDelay))
		}
	}
	return h, nil
}

// boot creates (or recreates) one node behind the fault network.
func (h *Harness) boot(addr wire.Addr, cfg node.Config) error {
	ep, err := h.mem.Endpoint(addr)
	if err != nil {
		return fmt.Errorf("faultnet: endpoint %s: %w", addr, err)
	}
	h.mu.Lock()
	ring := h.rings[addr]
	if ring == nil {
		ring = flight.NewRing(0)
		h.rings[addr] = ring
	}
	h.mu.Unlock()
	cfg.Trace = ring
	nd := node.New(cfg, h.Net.Wrap(ep))
	h.mu.Lock()
	if cfg.Source {
		h.sources[addr] = nd
	} else {
		h.nodes[addr] = nd
	}
	h.cfgs[addr] = cfg
	h.mu.Unlock()
	nd.Start()
	return nil
}

// nodeHook implements crash/restart: down kills the node process (its
// endpoint frees the address), up boots a fresh node with the same config.
// Sources are killable too — a crash event naming a source address takes the
// stream down with it, which is the fleet source-failover scenario.
func (h *Harness) nodeHook(addr string, up bool) {
	a := wire.Addr(addr)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	nd := h.nodes[a]
	if nd == nil {
		nd = h.sources[a]
	}
	cfg, known := h.cfgs[a]
	if !up {
		delete(h.nodes, a)
		delete(h.sources, a)
	}
	h.mu.Unlock()
	if !up {
		if nd != nil {
			nd.Kill()
		}
		return
	}
	if known {
		_ = h.boot(a, cfg) // rebirth failures surface as a missing node
	}
}

// Members snapshots the current live node set sorted by address: surviving
// sources first (sorted), then members. A crashed source is absent, exactly
// like a crashed member.
func (h *Harness) Members() []NodeReport {
	h.mu.Lock()
	nodes := make(map[wire.Addr]*node.Node, len(h.nodes))
	for a, nd := range h.nodes {
		nodes[a] = nd
	}
	srcs := make(map[wire.Addr]*node.Node, len(h.sources))
	for a, nd := range h.sources {
		srcs[a] = nd
	}
	h.mu.Unlock()
	out := make([]NodeReport, 0, len(nodes)+len(srcs))
	srcAddrs := make([]wire.Addr, 0, len(srcs))
	for a := range srcs {
		srcAddrs = append(srcAddrs, a)
	}
	sort.Slice(srcAddrs, func(i, j int) bool { return srcAddrs[i] < srcAddrs[j] })
	for _, a := range srcAddrs {
		out = append(out, NodeReport{Addr: a, Stats: srcs[a].Stats()})
	}
	addrs := make([]wire.Addr, 0, len(nodes))
	for a := range nodes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		out = append(out, NodeReport{Addr: a, Stats: nodes[a].Stats(), Byzantine: h.sc.byzantine(a)})
	}
	return out
}

// Spans drains every flight recorder: source rings first (sorted), then
// member rings sorted by address — the stable order the determinism and
// export layers rely on. Rings survive crashes, so a killed source's
// pre-crash episodes are kept.
func (h *Harness) Spans() []tracing.Span {
	h.mu.Lock()
	srcAddrs := make([]wire.Addr, 0, 1)
	addrs := make([]wire.Addr, 0, len(h.rings))
	for a := range h.rings {
		if isSource(a) {
			srcAddrs = append(srcAddrs, a)
		} else {
			addrs = append(addrs, a)
		}
	}
	rings := make(map[wire.Addr]*flight.Ring, len(h.rings))
	for a, r := range h.rings {
		rings[a] = r
	}
	h.mu.Unlock()
	sort.Slice(srcAddrs, func(i, j int) bool { return srcAddrs[i] < srcAddrs[j] })
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []tracing.Span
	for _, a := range srcAddrs {
		out = append(out, rings[a].Snapshot()...)
	}
	for _, a := range addrs {
		out = append(out, rings[a].Snapshot()...)
	}
	return out
}

// faultSpans renders the scenario's scaled fault schedule as annotation
// spans on a synthetic "faultnet" track: one span per timed event, covering
// [At, Until] for windowed faults (a partition, a crash with restart) and
// instantaneous for one-shot changes. Overlaying them on the node tracks
// shows which recovery episodes ran under which injected fault.
func faultSpans(scn Scenario) []tracing.Span {
	sch := scn.scaledSchedule()
	if len(sch.Events) == 0 {
		return nil
	}
	var out []tracing.Span
	tr := tracing.NewNode(scn.Seed, "faultnet", tracing.RecorderFunc(func(sp tracing.Span) {
		out = append(out, sp)
	}))
	for _, ev := range sch.Events {
		end := ev.At.D()
		if ev.Until.D() > end {
			end = ev.Until.D()
		}
		sp := tr.Start(tracing.KindFault, 0, ev.At.D())
		if ev.Node != "" {
			sp.Attr("node", ev.Node)
		}
		if ev.From != "" || ev.To != "" {
			sp.Attr("link", ev.From+">"+ev.To)
		}
		sp.End(end, string(ev.Action))
	}
	return out
}

// AllAttached reports whether the full member set is alive and every honest
// member holds a tree position (false while any node is crashed). Byzantine
// members are exempt: once quarantined by every honest peer they may be
// permanently detached, and that is the defense working, not a failure.
func (h *Harness) AllAttached() bool {
	h.mu.Lock()
	nodes := make(map[wire.Addr]*node.Node, len(h.nodes))
	for a, nd := range h.nodes {
		nodes[a] = nd
	}
	full := len(h.nodes) == h.sc.Nodes
	h.mu.Unlock()
	if !full {
		return false
	}
	for a, nd := range nodes {
		if h.sc.byzantine(a) {
			continue
		}
		if !nd.Stats().Attached {
			return false
		}
	}
	return true
}

// WaitAttached polls until the full membership is attached or the
// (already-scaled) deadline passes, returning the elapsed time and success.
func (h *Harness) WaitAttached(within time.Duration) (time.Duration, bool) {
	start := time.Now()
	deadline := start.Add(within)
	for time.Now().Before(deadline) {
		if h.AllAttached() {
			return time.Since(start), true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return time.Since(start), h.AllAttached()
}

// StartFaults arms the scenario schedule.
func (h *Harness) StartFaults() { h.Net.Start() }

// Close tears the overlay and fault network down.
func (h *Harness) Close() {
	h.mu.Lock()
	h.closed = true
	nodes := make([]*node.Node, 0, len(h.nodes)+len(h.sources))
	for _, nd := range h.sources {
		nodes = append(nodes, nd)
	}
	for _, nd := range h.nodes {
		nodes = append(nodes, nd)
	}
	h.mu.Unlock()
	h.Net.Close()
	for _, nd := range nodes {
		nd.Kill()
	}
	h.mem.Close()
}

// lastChangeAt returns the scaled offset of the schedule's final change.
func lastChangeAt(sch *faultnet.Schedule) time.Duration {
	var last time.Duration
	for _, c := range sch.Expand() {
		if c.T > last {
			last = c.T
		}
	}
	return last
}

// lastSourceCrashAt returns the scaled offset of the schedule's final crash
// event that names a source address — the instant the fleet failover clock
// starts from.
func lastSourceCrashAt(sch *faultnet.Schedule) time.Duration {
	var last time.Duration
	for _, ev := range sch.Events {
		if ev.Action == faultnet.ActionCrash && isSource(wire.Addr(ev.Node)) && ev.At.D() > last {
			last = ev.At.D()
		}
	}
	return last
}

// Run executes one scenario end to end and evaluates its bounds.
func Run(scn Scenario) (*Report, error) {
	h, err := NewHarness(scn)
	if err != nil {
		return nil, err
	}
	defer h.Close()

	sch := h.Net.opts.Schedule
	rep := &Report{
		Scenario: scn.Name,
		Seed:     scn.Seed,
		Plan:     sch.FormatPlan(),
	}

	if scn.Warmup > 0 {
		if _, ok := h.WaitAttached(sc(scn.Warmup)); !ok {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("overlay did not form within warmup %s", sc(scn.Warmup)))
		}
	}

	start := time.Now()
	h.StartFaults()

	if scn.Bounds.AttachWithin > 0 {
		elapsed, ok := h.WaitAttached(sc(scn.Bounds.AttachWithin))
		rep.AttachTime = elapsed
		if !ok {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("members not all attached within %s of start (waited %s)",
					sc(scn.Bounds.AttachWithin), elapsed))
		}
	}

	duration := sc(scn.Duration)
	if remaining := duration - time.Since(start); remaining > 0 {
		time.Sleep(remaining)
	}

	if scn.Bounds.MaxReassignTime > 0 {
		// The failover clock starts at the last source kill; whatever the
		// main sleep already burned past it counts against the bound.
		base := start.Add(lastSourceCrashAt(sch))
		budget := sc(scn.Bounds.MaxReassignTime) - time.Since(base)
		if budget < 0 {
			budget = 0
		}
		_, ok := h.WaitAttached(budget)
		rep.ReassignTime = time.Since(base)
		if !ok {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("members not all re-assigned within %s of last source kill (took %s)",
					sc(scn.Bounds.MaxReassignTime), rep.ReassignTime))
		}
	}

	if scn.Bounds.RecoverWithin > 0 {
		// The recovery clock starts at the schedule's last change (the final
		// heal/restart); anything burned past it during the main sleep counts.
		base := start.Add(lastChangeAt(sch))
		budget := sc(scn.Bounds.RecoverWithin) - time.Since(base)
		if budget < 0 {
			budget = 0
		}
		_, ok := h.WaitAttached(budget)
		rep.RecoveryTime = time.Since(base)
		if !ok {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("overlay not re-attached within %s of last change (took %s)",
					sc(scn.Bounds.RecoverWithin), rep.RecoveryTime))
		}
	}

	if scn.Bounds.RequireAllAttached {
		// Under sustained faults a member can be mid-rejoin at any given
		// instant (a 20% loss link occasionally eats three heartbeats in a
		// row). The bound is convergence, not a lucky snapshot: give the
		// overlay one short grace window to be simultaneously attached.
		h.WaitAttached(sc(time.Second))
	}
	rep.Nodes = h.Members()
	rep.Spans = append(h.Spans(), faultSpans(scn)...)
	rep.FaultLog = h.Net.FormatLog()
	rep.FaultStats = h.Net.FormatStats()
	evaluate(rep, scn, h, time.Since(start))
	return rep, nil
}

// evaluate applies the scenario bounds to the collected stats.
func evaluate(rep *Report, scn Scenario, h *Harness, ran time.Duration) {
	b := scn.Bounds
	alive := 0
	for _, nr := range rep.Nodes {
		if !isSource(nr.Addr) {
			alive++
		}
	}
	if b.RequireAllAttached && alive < scn.Nodes {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("only %d of %d members alive at end", alive, scn.Nodes))
	}
	var suppressed, rejoins int64
	var quarantines, wireRejects, auditFails int64
	var starveSum float64
	honest := 0
	sourcePackets := int64(ran.Seconds() * h.rate)
	for _, nr := range rep.Nodes {
		s := nr.Stats
		// Guard totals sum over every node, sources included: any honest
		// participant convicting a byzantine peer is evidence.
		quarantines += s.GuardQuarantines
		wireRejects += s.WireRejects
		auditFails += s.GuardAuditFails
		if isSource(nr.Addr) {
			continue
		}
		if nr.Byzantine {
			// Adversarial members are outside the delivery contract: honest
			// peers quarantine them, so attachment, starvation and packet
			// bounds do not apply.
			continue
		}
		suppressed += s.RepairsSuppressed
		rejoins += s.Rejoins + s.StallRejoins
		starveSum += s.StarvingRatio()
		honest++
		if b.RequireAllAttached && !s.Attached {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s detached at end", nr.Addr))
		}
		if b.MaxStarvingRatio > 0 && s.StarvingRatio() > b.MaxStarvingRatio {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s starving ratio %.3f > %.3f", nr.Addr, s.StarvingRatio(), b.MaxStarvingRatio))
		}
		if b.MinPacketsFrac > 0 {
			want := int64(b.MinPacketsFrac * float64(sourcePackets))
			if s.PacketsReceived < want {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s received %d packets, want >= %d (%.0f%% of ~%d)",
						nr.Addr, s.PacketsReceived, want, b.MinPacketsFrac*100, sourcePackets))
			}
		}
		if b.MaxRepairRequestsPerNode > 0 && s.RepairRequests > b.MaxRepairRequestsPerNode {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s issued %d repair requests > bound %d (storm)",
					nr.Addr, s.RepairRequests, b.MaxRepairRequestsPerNode))
		}
	}
	if b.MinRepairsSuppressedTotal > 0 && suppressed < b.MinRepairsSuppressedTotal {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("repair backoff suppressed %d requests, want >= %d (gate never engaged)",
				suppressed, b.MinRepairsSuppressedTotal))
	}
	if b.MinRejoinsTotal > 0 && rejoins < b.MinRejoinsTotal {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("members rejoined %d times, want >= %d (fault never disturbed the tree)",
				rejoins, b.MinRejoinsTotal))
	}
	if b.MinQuarantinesTotal > 0 && quarantines < b.MinQuarantinesTotal {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("nodes quarantined %d peers, want >= %d (guard never convicted)",
				quarantines, b.MinQuarantinesTotal))
	}
	if b.MinWireRejectsTotal > 0 && wireRejects < b.MinWireRejectsTotal {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("nodes wire-rejected %d datagrams, want >= %d (validation never engaged)",
				wireRejects, b.MinWireRejectsTotal))
	}
	if b.MinAuditFailsTotal > 0 && auditFails < b.MinAuditFailsTotal {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("nodes failed %d BTP audits, want >= %d (forged claims never caught)",
				auditFails, b.MinAuditFailsTotal))
	}
	if b.MaxOutageRatio > 0 && honest > 0 {
		mean := starveSum / float64(honest)
		if mean > b.MaxOutageRatio {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("mean starving ratio %.3f across %d honest members > outage bound %.3f",
					mean, honest, b.MaxOutageRatio))
		}
	}
}
