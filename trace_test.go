package omcast_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"omcast"
)

func TestRunWithTrace(t *testing.T) {
	var buf bytes.Buffer
	res, err := omcast.RunWithTrace(quickConfig(40, omcast.ROST), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("traced run measured nothing")
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	prevT := -1.0
	for sc.Scan() {
		var ev omcast.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.T < prevT {
			t.Fatalf("trace went backwards in time: %f after %f", ev.T, prevT)
		}
		prevT = ev.T
		if ev.Member == 0 && ev.Event != "sample" {
			t.Fatalf("trace event without member: %+v", ev)
		}
		kinds[ev.Event]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"join", "depart", "failure", "switch", "rejoin"} {
		if kinds[want] == 0 {
			t.Fatalf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}
	// Joins and departs roughly balance over a steady-state run (the
	// population present at the end never departs).
	if kinds["depart"] > kinds["join"] {
		t.Fatalf("more departs (%d) than joins (%d)", kinds["depart"], kinds["join"])
	}
}

func TestRunWithTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := omcast.RunWithTrace(quickConfig(41, omcast.ROST), &a); err != nil {
		t.Fatal(err)
	}
	if _, err := omcast.RunWithTrace(quickConfig(41, omcast.ROST), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different traces")
	}
}

func TestRunWithTraceNilWriter(t *testing.T) {
	res, err := omcast.RunWithTrace(quickConfig(42, omcast.MinimumDepth), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("nil-writer run measured nothing")
	}
}

// failingWriter errors after some bytes to exercise error propagation.
type failingWriter struct{ left int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left -= len(p); w.left <= 0 {
		return 0, errWriter
	}
	return len(p), nil
}

var errWriter = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestRunWithTraceWriteError(t *testing.T) {
	_, err := omcast.RunWithTrace(quickConfig(43, omcast.MinimumDepth), &failingWriter{left: 1024})
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("write failure not surfaced: %v", err)
	}
}

func TestRunWithTraceSampled(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(44, omcast.ROST)
	_, err := omcast.RunWithTraceOptions(cfg, &buf, omcast.TraceOptions{SampleEvery: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	prevT := -1.0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev omcast.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.Event != "sample" {
			continue
		}
		samples++
		if ev.Member != 0 {
			t.Fatalf("sample event carries a member: %+v", ev)
		}
		if len(ev.Metrics) == 0 {
			t.Fatalf("sample at t=%f has no metrics", ev.T)
		}
		if ev.T <= prevT {
			t.Fatalf("samples not strictly ordered: %f after %f", ev.T, prevT)
		}
		prevT = ev.T
		found := false
		for _, m := range ev.Metrics {
			if m.Name == "omcast_sim_events_fired_total" {
				found = true
				if samples > 1 && m.Value == 0 {
					t.Fatal("kernel counters stayed zero mid-run")
				}
			}
		}
		if !found {
			t.Fatalf("sample lacks kernel metrics (got %d series)", len(ev.Metrics))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// quickConfig runs 900s warmup + 1200s measure = 2100s = 7 five-minute
	// intervals, plus the t=0 snapshot.
	if samples < 7 {
		t.Fatalf("got %d sample events, want >= 7", samples)
	}
}

func TestRunStreamingWithTraceRepairs(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(45, omcast.ROST)
	res, err := omcast.RunStreamingWithTrace(cfg, omcast.StreamConfig{GroupSize: 3}, &buf, omcast.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes == 0 {
		t.Fatal("streaming run had no recovery episodes")
	}
	repairs := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev omcast.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if ev.Event != "repair" {
			continue
		}
		repairs++
		if ev.Member == 0 {
			t.Fatalf("repair without orphan: %+v", ev)
		}
		if ev.Repaired == nil || ev.Lost == nil {
			t.Fatalf("repair outcome fields absent (pointer presence broken): %s", sc.Text())
		}
		if *ev.Repaired < 0 || *ev.Lost < 0 {
			t.Fatalf("negative repair outcome: %+v", ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if repairs == 0 {
		t.Fatal("trace has no repair events despite episodes > 0")
	}
}
