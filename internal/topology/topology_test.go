package topology

import (
	"testing"
	"time"

	"omcast/internal/xrand"
)

// smallConfig returns a modest topology good for exhaustive checks.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.TransitDomains = 3
	cfg.TransitNodesPerDomain = 5
	cfg.StubDomainsPerTransit = 2
	cfg.StubNodesPerDomain = 6
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return topo
}

func TestValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.TransitDomains = 0 },
		func(c *Config) { c.TransitNodesPerDomain = -1 },
		func(c *Config) { c.StubDomainsPerTransit = -2 },
		func(c *Config) { c.StubNodesPerDomain = 0 },
		func(c *Config) { c.TransitTransitDelay = [2]time.Duration{0, time.Millisecond} },
		func(c *Config) { c.StubStubDelay = [2]time.Duration{4 * time.Millisecond, 2 * time.Millisecond} },
		func(c *Config) { c.TransitChordProbability = 1.5 },
		func(c *Config) { c.StubChordProbability = -0.1 },
	}
	for i, mutate := range bads {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestCounts(t *testing.T) {
	cfg := smallConfig(7)
	topo := mustNew(t, cfg)
	wantTransit := 3 * 5
	wantStub := wantTransit * 2 * 6
	if topo.TransitCount() != wantTransit {
		t.Fatalf("TransitCount = %d, want %d", topo.TransitCount(), wantTransit)
	}
	if topo.StubCount() != wantStub {
		t.Fatalf("StubCount = %d, want %d", topo.StubCount(), wantStub)
	}
	if topo.Size() != wantTransit+wantStub {
		t.Fatalf("Size = %d, want %d", topo.Size(), wantTransit+wantStub)
	}
	if len(topo.Stubs()) != wantStub {
		t.Fatalf("Stubs() has %d entries, want %d", len(topo.Stubs()), wantStub)
	}
}

func TestPaperScaleCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale topology in -short mode")
	}
	cfg := DefaultConfig(42)
	topo := mustNew(t, cfg)
	if topo.Size() != 15600 {
		t.Fatalf("paper topology has %d routers, want 15600", topo.Size())
	}
	if topo.TransitCount() != 240 {
		t.Fatalf("transit routers = %d, want 240", topo.TransitCount())
	}
	if topo.StubCount() != 15360 {
		t.Fatalf("stub routers = %d, want 15360", topo.StubCount())
	}
}

func TestKinds(t *testing.T) {
	topo := mustNew(t, smallConfig(3))
	for id := NodeID(0); id < NodeID(topo.Size()); id++ {
		want := Stub
		if int(id) < topo.TransitCount() {
			want = Transit
		}
		if got := topo.KindOf(id); got != want {
			t.Fatalf("KindOf(%d) = %v, want %v", id, got, want)
		}
	}
	if Transit.String() != "transit" || Stub.String() != "stub" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		topo := mustNew(t, smallConfig(seed))
		if !topo.Connected() {
			t.Fatalf("topology with seed %d is disconnected", seed)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustNew(t, smallConfig(11))
	b := mustNew(t, smallConfig(11))
	rng := xrand.New(1)
	for i := 0; i < 500; i++ {
		u := NodeID(rng.Intn(a.Size()))
		v := NodeID(rng.Intn(a.Size()))
		if a.Delay(u, v) != b.Delay(u, v) {
			t.Fatalf("same seed produced different delays for (%d,%d)", u, v)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := mustNew(t, smallConfig(1))
	b := mustNew(t, smallConfig(2))
	diff := 0
	for u := NodeID(0); u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			if a.Delay(u, v) != b.Delay(u, v) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical delay structure")
	}
}

// TestOracleMatchesDijkstra is the key correctness property: the O(1)
// hierarchical oracle must agree exactly with full-graph Dijkstra.
func TestOracleMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		topo := mustNew(t, smallConfig(seed))
		for src := NodeID(0); src < NodeID(topo.Size()); src += 7 {
			dist := topo.DijkstraFrom(src)
			for v := NodeID(0); v < NodeID(topo.Size()); v++ {
				if got := topo.Delay(src, v); got != dist[v] {
					t.Fatalf("seed %d: Delay(%d,%d) = %v, Dijkstra says %v",
						seed, src, v, got, dist[v])
				}
			}
		}
	}
}

func TestDelaySymmetricAndZeroOnSelf(t *testing.T) {
	topo := mustNew(t, smallConfig(5))
	rng := xrand.New(2)
	for i := 0; i < 1000; i++ {
		u := NodeID(rng.Intn(topo.Size()))
		v := NodeID(rng.Intn(topo.Size()))
		if topo.Delay(u, u) != 0 {
			t.Fatalf("Delay(%d,%d) != 0", u, u)
		}
		if topo.Delay(u, v) != topo.Delay(v, u) {
			t.Fatalf("Delay not symmetric for (%d,%d)", u, v)
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	topo := mustNew(t, smallConfig(6))
	rng := xrand.New(3)
	for i := 0; i < 2000; i++ {
		u := NodeID(rng.Intn(topo.Size()))
		v := NodeID(rng.Intn(topo.Size()))
		w := NodeID(rng.Intn(topo.Size()))
		if topo.Delay(u, w) > topo.Delay(u, v)+topo.Delay(v, w) {
			t.Fatalf("triangle inequality violated for (%d,%d,%d)", u, v, w)
		}
	}
}

func TestDelayPositiveBetweenDistinct(t *testing.T) {
	topo := mustNew(t, smallConfig(8))
	rng := xrand.New(4)
	for i := 0; i < 1000; i++ {
		u := NodeID(rng.Intn(topo.Size()))
		v := NodeID(rng.Intn(topo.Size()))
		if u == v {
			continue
		}
		if topo.Delay(u, v) <= 0 {
			t.Fatalf("Delay(%d,%d) = %v, want > 0", u, v, topo.Delay(u, v))
		}
	}
}

// TestDelayRangesRespectConfig spot-checks that adjacent-router delays fall
// inside the configured uniform ranges (link-level property).
func TestDelayRangesRespectConfig(t *testing.T) {
	cfg := smallConfig(9)
	topo := mustNew(t, cfg)
	for u := 0; u < topo.Size(); u++ {
		for _, e := range topo.adj[u] {
			ku, kv := topo.kinds[u], topo.kinds[e.to]
			var lo, hi time.Duration
			switch {
			case ku == Transit && kv == Transit:
				lo, hi = cfg.TransitTransitDelay[0], cfg.TransitTransitDelay[1]
			case ku == Stub && kv == Stub:
				lo, hi = cfg.StubStubDelay[0], cfg.StubStubDelay[1]
			default:
				lo, hi = cfg.TransitStubDelay[0], cfg.TransitStubDelay[1]
			}
			if e.delay < lo || e.delay >= hi {
				t.Fatalf("link %d(%v)-%d(%v) delay %v outside [%v,%v)",
					u, ku, e.to, kv, e.delay, lo, hi)
			}
		}
	}
}

func TestStubDomainsSingleHomed(t *testing.T) {
	topo := mustNew(t, smallConfig(10))
	// Each stub domain must have exactly one edge leaving it.
	exits := make(map[int32]int)
	for u := 0; u < topo.Size(); u++ {
		if topo.domain[u] < 0 {
			continue
		}
		for _, e := range topo.adj[u] {
			if topo.domain[e.to] != topo.domain[u] {
				exits[topo.domain[u]]++
			}
		}
	}
	if len(exits) != len(topo.domains) {
		t.Fatalf("%d domains have exits, want %d", len(exits), len(topo.domains))
	}
	for dom, n := range exits {
		if n != 1 {
			t.Fatalf("stub domain %d has %d exit edges, want 1", dom, n)
		}
	}
}

func TestRandomStubIsStub(t *testing.T) {
	topo := mustNew(t, smallConfig(12))
	rng := xrand.New(5)
	for i := 0; i < 500; i++ {
		if s := topo.RandomStub(rng); topo.KindOf(s) != Stub {
			t.Fatalf("RandomStub returned non-stub %d", s)
		}
	}
}

func TestDegreePositive(t *testing.T) {
	topo := mustNew(t, smallConfig(13))
	for id := NodeID(0); id < NodeID(topo.Size()); id++ {
		if topo.Degree(id) == 0 {
			t.Fatalf("router %d has degree 0", id)
		}
	}
}

func TestSingleTransitDomain(t *testing.T) {
	cfg := smallConfig(14)
	cfg.TransitDomains = 1
	topo := mustNew(t, cfg)
	if !topo.Connected() {
		t.Fatal("single-domain topology disconnected")
	}
	// Oracle still exact.
	dist := topo.DijkstraFrom(0)
	for v := NodeID(0); v < NodeID(topo.Size()); v++ {
		if topo.Delay(0, v) != dist[v] {
			t.Fatalf("oracle mismatch at %d", v)
		}
	}
}

func TestTinyStubDomains(t *testing.T) {
	cfg := smallConfig(15)
	cfg.StubNodesPerDomain = 1
	topo := mustNew(t, cfg)
	if !topo.Connected() {
		t.Fatal("1-router stub domains disconnected")
	}
	dist := topo.DijkstraFrom(NodeID(topo.TransitCount())) // a stub router
	for v := NodeID(0); v < NodeID(topo.Size()); v++ {
		if topo.Delay(NodeID(topo.TransitCount()), v) != dist[v] {
			t.Fatalf("oracle mismatch at %d with singleton stub domains", v)
		}
	}
}

func TestNoStubDomains(t *testing.T) {
	cfg := smallConfig(16)
	cfg.StubDomainsPerTransit = 0
	topo := mustNew(t, cfg)
	if topo.StubCount() != 0 {
		t.Fatalf("StubCount = %d, want 0", topo.StubCount())
	}
	if !topo.Connected() {
		t.Fatal("transit-only topology disconnected")
	}
}

func TestVisitLinks(t *testing.T) {
	topo := mustNew(t, smallConfig(17))
	count := 0
	degSum := 0
	topo.VisitLinks(func(a, b NodeID, delay time.Duration) {
		if a >= b {
			t.Fatalf("link (%d,%d) not canonically ordered", a, b)
		}
		if delay <= 0 {
			t.Fatalf("link (%d,%d) has delay %v", a, b, delay)
		}
		count++
	})
	for id := NodeID(0); int(id) < topo.Size(); id++ {
		degSum += topo.Degree(id)
	}
	if count != degSum/2 {
		t.Fatalf("VisitLinks saw %d links, degree sum says %d", count, degSum/2)
	}
}
