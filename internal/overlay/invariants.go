package overlay

import "fmt"

// Invariant checking comes in two flavors:
//
//   - CheckInvariants (default): incremental. Every structural mutation
//     stamps the dense indexes it touched into a dirty list (deduplicated
//     with an epoch-stamped scratch, the same pattern as Sample's dedup), and
//     the check validates only those members' local invariants plus O(1)
//     global counters. Steady-state cost is O(changed since the last check),
//     not O(members).
//   - CheckInvariantsFull: the historical full scan — every member, the
//     reachability audit and the complete level-index sweep. It is O(n) and
//     allocation-free (the former per-call seen map is an epoch-stamped
//     scratch buffer now).
//
// SetParanoid(true) routes every CheckInvariants call through the full scan
// (the -paranoid escape hatch on the CLIs). The two paths are
// equivalence-tested: on valid trees both return nil, and corruptions
// injected into freshly-mutated members are reported by both.

// SetParanoid selects whether CheckInvariants performs the full O(n) scan
// (true) or the incremental O(changed) check (false, the default).
func (t *Tree) SetParanoid(on bool) { t.paranoid = on }

// Paranoid reports whether full-scan invariant checking is forced.
func (t *Tree) Paranoid() bool { return t.paranoid }

// markDirty records that the member at dense index i was structurally
// mutated since the last invariant check. Deduplicated via epoch stamps, so
// repeated mutations of the same member cost O(1) and no allocation.
func (t *Tree) markDirty(i int32) {
	if t.dirtyStamp[i] != t.dirtyEpoch {
		t.dirtyStamp[i] = t.dirtyEpoch
		t.dirtyList = append(t.dirtyList, i)
	}
}

// resetDirty clears the dirty set by bumping the epoch.
func (t *Tree) resetDirty() {
	t.dirtyList = t.dirtyList[:0]
	t.dirtyEpoch++
	if t.dirtyEpoch == 0 { // epoch wrapped: stale stamps could collide
		clear(t.dirtyStamp)
		t.dirtyEpoch = 1
	}
}

// CheckInvariants verifies structural invariants and returns the first
// violation found, or nil. By default it is incremental: only members
// mutated since the previous call are examined (plus O(1) global counter
// cross-checks), so steady-state calls are O(changed). With SetParanoid(true)
// it performs the full scan instead. Either way the dirty set is drained.
func (t *Tree) CheckInvariants() error {
	if t.paranoid {
		return t.CheckInvariantsFull()
	}
	defer t.resetDirty()
	for _, i := range t.dirtyList {
		if t.handle[i] == nil {
			continue // slot freed since it was dirtied
		}
		if err := t.checkLocal(i); err != nil {
			return err
		}
	}
	return t.checkCounters()
}

// checkCounters cross-checks the O(1) global invariants: the two
// independently maintained attached counters (flag flips vs level
// insert/remove) and the live-member count against the order list.
func (t *Tree) checkCounters() error {
	if t.attachedCount != t.levelCount {
		return fmt.Errorf("overlay: %d members attached, level index holds %d", t.attachedCount, t.levelCount)
	}
	if t.liveCount != len(t.order)+1 {
		return fmt.Errorf("overlay: %d live members, order list holds %d (+root)", t.liveCount, len(t.order))
	}
	return nil
}

// checkLocal validates the member at dense index i against its immediate
// neighborhood: degree bound, child-link integrity (parent pointers, sibling
// back-links, count), attached children's depth and path delay, and its own
// slots in the level and order indexes.
func (t *Tree) checkLocal(i int32) error {
	m := t.handle[i]
	if t.kidCount[i] > t.outDeg[i] {
		return fmt.Errorf("overlay: member %d has %d children, degree %d", m.ID, t.kidCount[i], t.outDeg[i])
	}
	var n int32
	prev := none
	for c := t.firstKid[i]; c != none; c = t.nextSib[c] {
		n++
		if n > t.kidCount[i] {
			return fmt.Errorf("overlay: member %d child list longer than its count %d", m.ID, t.kidCount[i])
		}
		if t.handle[c] == nil {
			return fmt.Errorf("overlay: member %d links freed child slot %d", m.ID, c)
		}
		if t.parent[c] != i {
			return fmt.Errorf("overlay: member %d's child %d has wrong parent", m.ID, t.handle[c].ID)
		}
		if t.prevSib[c] != prev {
			return fmt.Errorf("overlay: member %d's child %d has broken sibling back-link", m.ID, t.handle[c].ID)
		}
		if t.attached[c] {
			if t.depth[c] != t.depth[i]+1 {
				return fmt.Errorf("overlay: member %d depth %d, parent depth %d", t.handle[c].ID, t.depth[c], t.depth[i])
			}
			want := t.pathDelay[i] + t.delayFn(m.Attach, t.handle[c].Attach)
			if t.pathDelay[c] != want {
				return fmt.Errorf("overlay: member %d pathDelay %v, want %v", t.handle[c].ID, t.pathDelay[c], want)
			}
		}
		prev = c
	}
	if n != t.kidCount[i] {
		return fmt.Errorf("overlay: member %d child list holds %d, count says %d", m.ID, n, t.kidCount[i])
	}
	if t.lastKid[i] != prev {
		return fmt.Errorf("overlay: member %d lastKid does not terminate its child list", m.ID)
	}
	if t.attached[i] {
		d := int(t.depth[i])
		li := t.levelIdx[i]
		if d < 0 || d >= len(t.levels) || li < 0 || int(li) >= len(t.levels[d]) || t.levels[d][li] != m {
			return fmt.Errorf("overlay: level index corrupt at depth %d slot %d (member %d)", d, li, m.ID)
		}
		if p := t.parent[i]; p != none && !t.attached[p] {
			return fmt.Errorf("overlay: member %d attached under detached parent %d", m.ID, t.handle[p].ID)
		}
		if t.parent[i] == none && m != t.root {
			return fmt.Errorf("overlay: member %d attached with no parent", m.ID)
		}
	} else {
		if t.levelIdx[i] != none {
			return fmt.Errorf("overlay: detached member %d still in the level index", m.ID)
		}
		if t.depth[i] != -1 && t.parent[i] == none {
			return fmt.Errorf("overlay: detached parentless member %d has depth %d", m.ID, t.depth[i])
		}
	}
	if m != t.root {
		oi := t.orderIdx[i]
		if oi < 0 || int(oi) >= len(t.order) || t.order[oi] != m {
			return fmt.Errorf("overlay: member %d missing from the order index", m.ID)
		}
	}
	return nil
}

// CheckInvariantsFull verifies every structural invariant with a complete
// O(n) scan: the pre-order walk from the source (degree bounds, link
// integrity, depths, path delays, double-reachability), the
// every-attached-member-is-reachable audit in ID order, and the full
// level-index sweep. Allocation-free: reachability is tracked in an
// epoch-stamped scratch buffer.
func (t *Tree) CheckInvariantsFull() error {
	defer t.resetDirty()
	if len(t.invSeen) < len(t.handle) {
		t.invSeen = make([]uint32, len(t.handle))
		t.invEpoch = 0
	}
	t.invEpoch++
	if t.invEpoch == 0 { // epoch wrapped: stale stamps could collide
		clear(t.invSeen)
		t.invEpoch = 1
	}
	if err := t.invWalk(t.root.idx); err != nil {
		return err
	}
	// Every attached member must be reachable from the root. Scan in ID
	// order (idToIdx is ID-ordered by construction) so the violation
	// reported first is the same on every run.
	for id := 1; id < len(t.idToIdx); id++ {
		i := t.idToIdx[id]
		if i >= 0 && t.attached[i] && t.invSeen[i] != t.invEpoch {
			return fmt.Errorf("overlay: attached member %d unreachable from source", id)
		}
	}
	// Level index must agree with member depths.
	counted := 0
	for d, level := range t.levels {
		for li, m := range level {
			if m.idx < 0 || int(t.depth[m.idx]) != d || int(t.levelIdx[m.idx]) != li || !t.attached[m.idx] {
				return fmt.Errorf("overlay: level index corrupt at depth %d slot %d (member %d)", d, li, m.ID)
			}
			counted++
		}
	}
	attachedCount := 0
	for _, m := range t.handle {
		if m != nil && t.attached[m.idx] {
			attachedCount++
		}
	}
	if counted != attachedCount {
		return fmt.Errorf("overlay: level index holds %d members, %d attached", counted, attachedCount)
	}
	if attachedCount != t.attachedCount || counted != t.levelCount {
		return fmt.Errorf("overlay: maintained counters (%d attached, %d level) disagree with scan (%d attached)",
			t.attachedCount, t.levelCount, attachedCount)
	}
	return t.checkCounters()
}

// invWalk is CheckInvariantsFull's pre-order walk over the subtree at dense
// index i, stamping reachability and checking the per-member invariants.
func (t *Tree) invWalk(i int32) error {
	if t.invSeen[i] == t.invEpoch {
		return fmt.Errorf("overlay: member %d reachable twice", t.handle[i].ID)
	}
	t.invSeen[i] = t.invEpoch
	if err := t.checkLocal(i); err != nil {
		return err
	}
	for c := t.firstKid[i]; c != none; c = t.nextSib[c] {
		if err := t.invWalk(c); err != nil {
			return err
		}
	}
	return nil
}
