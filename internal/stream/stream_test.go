package stream

import (
	"math"
	"testing"
	"time"

	"omcast/internal/cer"
	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func delayFn(a, b topology.NodeID) time.Duration {
	if a == b {
		return 0
	}
	return time.Millisecond
}

// fixedSelector returns a canned recovery group.
type fixedSelector struct {
	group []*overlay.Member
}

func (s *fixedSelector) Select(*overlay.Member, int) []*overlay.Member { return s.group }

var _ cer.Selector = (*fixedSelector)(nil)

// world is a hand-built overlay for stream tests: root -> relay -> victim
// subtree, plus spare members usable as recovery nodes.
type world struct {
	tree     *overlay.Tree
	relay    *overlay.Member // fails in tests
	orphan   *overlay.Member // relay's child; runs recovery
	deep     *overlay.Member // orphan's child; relies on ELN
	helpers  []*overlay.Member
	selector *fixedSelector
}

func buildWorld(t *testing.T, nHelpers int) *world {
	t.Helper()
	tree, err := overlay.NewTree(0, 100, delayFn)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{tree: tree, selector: &fixedSelector{}}
	attach := topology.NodeID(1)
	mk := func(parent *overlay.Member, bw float64) *overlay.Member {
		m := tree.NewMember(attach, bw, 0)
		attach++
		if err := tree.Attach(m, parent); err != nil {
			t.Fatal(err)
		}
		return m
	}
	w.relay = mk(tree.Root(), 4)
	w.orphan = mk(w.relay, 4)
	w.deep = mk(w.orphan, 2)
	for i := 0; i < nHelpers; i++ {
		w.helpers = append(w.helpers, mk(tree.Root(), 2))
	}
	w.selector.group = w.helpers
	return w
}

// newModel builds the model and registers every member at time zero.
func newModel(t *testing.T, w *world, cfg Config) *Model {
	t.Helper()
	m := NewModel(w.tree, delayFn, w.selector, xrand.New(1), cfg)
	w.tree.VisitSubtree(w.tree.Root(), func(mem *overlay.Member) {
		if mem != w.tree.Root() {
			m.Register(mem, 0)
		}
	})
	return m
}

// setResidual overrides a member's recovery bandwidth (pkt/s).
func setResidual(m *Model, id overlay.MemberID, pktPerSec float64) {
	m.states[id].residual = pktPerSec
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Rate != DefaultRate || cfg.Buffer != DefaultBuffer ||
		cfg.DetectDelay != DefaultDetectDelay || cfg.RejoinDelay != DefaultRejoinDelay ||
		cfg.ResidualMax != DefaultResidualMax || cfg.GroupSize != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestNoFailureNoStarving(t *testing.T) {
	w := buildWorld(t, 2)
	m := newModel(t, w, Config{})
	m.Finish(1000 * time.Second)
	res := m.Result()
	if res.AvgStarvingRatio != 0 {
		t.Fatalf("starving ratio %g with no failures", res.AvgStarvingRatio)
	}
	if res.Members == 0 {
		t.Fatal("no members finalised")
	}
}

func TestShortViewersExcluded(t *testing.T) {
	w := buildWorld(t, 1)
	m := newModel(t, w, Config{})
	m.Register(w.tree.NewMember(99, 1, 999*time.Second), 999*time.Second)
	m.Finish(1000 * time.Second) // 1 s view time < MinViewTime
	for _, r := range m.Result().Ratios {
		if r != 0 {
			t.Fatal("short viewer contributed a ratio")
		}
	}
}

// TestTotalLossWithoutRecovery: no recovery group at all -> the whole 15 s
// outage starves (view 1000 s, ratio 1.5%).
func TestTotalLossWithoutRecovery(t *testing.T) {
	w := buildWorld(t, 0) // no helpers: selector returns nothing
	m := newModel(t, w, Config{})
	m.OnFailure(w.relay, 500*time.Second)
	m.Depart(w.orphan.ID, 1000*time.Second)
	res := m.Result()
	if res.Members != 1 {
		t.Fatalf("members = %d, want 1", res.Members)
	}
	want := 15.0 / 1000.0
	if math.Abs(res.AvgStarvingRatio-want) > 0.001 {
		t.Fatalf("ratio = %g, want ~%g", res.AvgStarvingRatio, want)
	}
	if m.PacketsLost == 0 || m.PacketsRepaired != 0 {
		t.Fatalf("lost=%d repaired=%d", m.PacketsLost, m.PacketsRepaired)
	}
}

// TestFullRecovery: a group covering the full stream rate repairs nearly
// everything; only packets whose deadline passes before detection can
// starve.
func TestFullRecovery(t *testing.T) {
	w := buildWorld(t, 2)
	m := newModel(t, w, Config{GroupSize: 2, Striped: true})
	setResidual(m, w.helpers[0].ID, 6)
	setResidual(m, w.helpers[1].ID, 6)
	m.OnFailure(w.relay, 500*time.Second)
	m.Depart(w.orphan.ID, 1000*time.Second)
	res := m.Result()
	// Detection takes 5 s and the buffer is 5 s: only the few packets whose
	// playback deadline lands within the request latency can starve.
	if res.AvgStarvingRatio > 0.001 {
		t.Fatalf("ratio = %g with full-rate recovery", res.AvgStarvingRatio)
	}
	if m.PacketsRepaired < 140 {
		t.Fatalf("repaired = %d, want ~150", m.PacketsRepaired)
	}
}

// TestPartialRecoveryScales: starving decreases as the recovery group's
// aggregate bandwidth rises.
func TestPartialRecoveryScales(t *testing.T) {
	ratioWith := func(res1, res2 float64) float64 {
		w := buildWorld(t, 2)
		m := newModel(t, w, Config{GroupSize: 2, Striped: true})
		setResidual(m, w.helpers[0].ID, res1)
		setResidual(m, w.helpers[1].ID, res2)
		m.OnFailure(w.relay, 500*time.Second)
		m.Depart(w.orphan.ID, 1000*time.Second)
		return m.Result().AvgStarvingRatio
	}
	weak := ratioWith(2, 0)
	medium := ratioWith(2, 3)
	strong := ratioWith(5, 5)
	if !(weak > medium && medium > strong) {
		t.Fatalf("ratios not monotone: weak=%g medium=%g strong=%g", weak, medium, strong)
	}
}

// TestBufferEffect reproduces the Figure 13 mechanism: with partial
// bandwidth, a larger buffer lets the post-rejoin backlog drain in time.
func TestBufferEffect(t *testing.T) {
	ratioWith := func(buffer time.Duration) float64 {
		w := buildWorld(t, 1)
		m := newModel(t, w, Config{GroupSize: 1, Striped: true, Buffer: buffer})
		setResidual(m, w.helpers[0].ID, 5)
		m.OnFailure(w.relay, 500*time.Second)
		m.Depart(w.orphan.ID, 1000*time.Second)
		return m.Result().AvgStarvingRatio
	}
	small := ratioWith(5 * time.Second)
	large := ratioWith(30 * time.Second)
	if large >= small {
		t.Fatalf("buffer 30s ratio %g not below buffer 5s ratio %g", large, small)
	}
	if large > 0.0005 {
		t.Fatalf("with a 30 s buffer and 5 pkt/s residual the backlog should drain (ratio %g)", large)
	}
}

// TestStripedBeatsSingleSource: same group, same bandwidths; striping
// aggregates where the baseline uses one node.
func TestStripedBeatsSingleSource(t *testing.T) {
	run := func(striped bool) float64 {
		w := buildWorld(t, 3)
		m := newModel(t, w, Config{GroupSize: 3, Striped: striped})
		for _, h := range w.helpers {
			setResidual(m, h.ID, 4)
		}
		m.OnFailure(w.relay, 500*time.Second)
		m.Depart(w.orphan.ID, 1000*time.Second)
		return m.Result().AvgStarvingRatio
	}
	if s, b := run(true), run(false); s >= b {
		t.Fatalf("striped ratio %g not below single-source %g", s, b)
	}
}

// TestELNSubtreeInheritsOutcome: the deep descendant neither issues its own
// request nor escapes the starving; it inherits the orphan's outcome.
func TestELNSubtreeInheritsOutcome(t *testing.T) {
	w := buildWorld(t, 0)
	m := newModel(t, w, Config{})
	m.OnFailure(w.relay, 500*time.Second)
	if m.RepairRequests != 1 {
		t.Fatalf("repair requests = %d, want 1 (orphan only)", m.RepairRequests)
	}
	if m.ELNMessages == 0 {
		t.Fatal("no ELN messages down the subtree")
	}
	m.Depart(w.orphan.ID, 1000*time.Second)
	m.Depart(w.deep.ID, 1000*time.Second)
	rs := m.Result().Ratios
	if len(rs) != 2 {
		t.Fatalf("ratios = %d, want 2", len(rs))
	}
	if math.Abs(rs[0]-rs[1]) > 0.001 {
		t.Fatalf("descendant outcome %g diverges from orphan %g", rs[1], rs[0])
	}
}

// TestOverlappingEpisodesNotDoubleCounted: two failures 5 s apart hit the
// same subtree; the shared missing range must be charged once.
func TestOverlappingEpisodesNotDoubleCounted(t *testing.T) {
	w := buildWorld(t, 0)
	m := newModel(t, w, Config{})
	// First failure disrupts [500, 515); second (the orphan's new parent
	// failing immediately, approximated by hitting relay again via a fresh
	// failure of the same subtree's parent) disrupts [505, 520).
	m.OnFailure(w.relay, 500*time.Second)
	m.OnFailure(w.relay, 505*time.Second)
	m.Depart(w.orphan.ID, 1000*time.Second)
	res := m.Result()
	// Union of the windows is [500, 520) = 20 s, not 30 s.
	want := 20.0 / 1000.0
	if math.Abs(res.AvgStarvingRatio-want) > 0.001 {
		t.Fatalf("ratio = %g, want ~%g (no double counting)", res.AvgStarvingRatio, want)
	}
}

// TestDisruptedServerCannotHelp: a recovery node inside its own outage is
// skipped.
func TestDisruptedServerCannotHelp(t *testing.T) {
	w := buildWorld(t, 1)
	m := newModel(t, w, Config{GroupSize: 1, Striped: true})
	setResidual(m, w.helpers[0].ID, 9)
	// Put the helper itself in an outage overlapping the request.
	m.states[w.helpers[0].ID].outageUntil = 520 * time.Second
	m.OnFailure(w.relay, 500*time.Second)
	m.Depart(w.orphan.ID, 1000*time.Second)
	res := m.Result()
	want := 15.0 / 1000.0 // total loss despite the nominal helper
	if math.Abs(res.AvgStarvingRatio-want) > 0.001 {
		t.Fatalf("ratio = %g, want ~%g", res.AvgStarvingRatio, want)
	}
}

// TestConcurrentSiblingOutage: when a failed node has two orphan subtrees,
// members of one cannot serve as recovery nodes for the other (phase-1
// marking precedes planning).
func TestConcurrentSiblingOutage(t *testing.T) {
	tree, err := overlay.NewTree(0, 100, delayFn)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(parent *overlay.Member, attach topology.NodeID) *overlay.Member {
		mem := tree.NewMember(attach, 4, 0)
		if err := tree.Attach(mem, parent); err != nil {
			t.Fatal(err)
		}
		return mem
	}
	relay := mk(tree.Root(), 1)
	orphanA := mk(relay, 2)
	orphanB := mk(relay, 3)
	sel := &fixedSelector{group: []*overlay.Member{orphanB}} // cross-sibling helper
	m := NewModel(tree, delayFn, sel, xrand.New(1), Config{GroupSize: 1, Striped: true})
	for _, mem := range []*overlay.Member{relay, orphanA, orphanB} {
		m.Register(mem, 0)
	}
	setResidual(m, orphanB.ID, 9)
	m.OnFailure(relay, 500*time.Second)
	m.Depart(orphanA.ID, 1000*time.Second)
	res := m.Result()
	want := 15.0 / 1000.0 // sibling was down too: no repair at all
	if math.Abs(res.AvgStarvingRatio-want) > 0.001 {
		t.Fatalf("ratio = %g, want ~%g", res.AvgStarvingRatio, want)
	}
}

func TestMeasureFromFiltersWarmup(t *testing.T) {
	w := buildWorld(t, 0)
	m := newModel(t, w, Config{MeasureFrom: 2000 * time.Second})
	m.OnFailure(w.relay, 500*time.Second)
	m.Depart(w.orphan.ID, 1000*time.Second) // finalised before MeasureFrom
	if n := m.Result().Members; n != 0 {
		t.Fatalf("members = %d, want 0 before MeasureFrom", n)
	}
	m.Finish(3000 * time.Second)
	if n := m.Result().Members; n == 0 {
		t.Fatal("survivors past MeasureFrom not finalised")
	}
}

func TestLateJoinerSkipsEpisode(t *testing.T) {
	w := buildWorld(t, 0)
	m := newModel(t, w, Config{})
	// deep joined after the failure instant: it was still buffering and is
	// not charged.
	m.states[w.deep.ID].viewStart = 501 * time.Second
	m.OnFailure(w.relay, 500*time.Second)
	m.Depart(w.deep.ID, 1000*time.Second)
	if got := m.Result().AvgStarvingRatio; got != 0 {
		t.Fatalf("late joiner charged ratio %g", got)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	w := buildWorld(t, 0)
	m := newModel(t, w, Config{})
	viewStart := m.states[w.orphan.ID].viewStart
	residual := m.states[w.orphan.ID].residual
	m.Register(w.orphan, 700*time.Second) // rejoin after failure
	if m.states[w.orphan.ID].viewStart != viewStart || m.states[w.orphan.ID].residual != residual {
		t.Fatal("re-registration reset playback state")
	}
}

func TestPacketAfter(t *testing.T) {
	w := buildWorld(t, 0)
	m := newModel(t, w, Config{})
	if n := m.packetAfter(0); n != 0 {
		t.Fatalf("packetAfter(0) = %d", n)
	}
	if n := m.packetAfter(time.Second); m.gen(n) < time.Second || m.gen(n-1) >= time.Second {
		t.Fatalf("packetAfter(1s) = %d (gen %v)", n, m.gen(n))
	}
}
