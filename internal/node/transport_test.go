package node

import (
	"errors"
	"sync"
	"testing"
	"time"

	"omcast/internal/metrics/live"
	"omcast/internal/wire"
)

func TestMemNetworkDelivery(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	b.SetHandler(func(data []byte) {
		mu.Lock()
		got = append(got, string(data))
		mu.Unlock()
	})
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	eventually(t, time.Second, "datagram delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1 && got[0] == "hello"
	})
	if a.Addr() != "a" || b.Addr() != "b" {
		t.Fatal("addresses wrong")
	}
}

func TestMemNetworkUnknownAddr(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("send to ghost = %v, want ErrUnknownAddr", err)
	}
}

func TestMemNetworkDuplicateAddr(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	if _, err := network.Endpoint("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := network.Endpoint("dup"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestMemNetworkCloseSemantics(t *testing.T) {
	network := NewMemNetwork(nil)
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("a", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close errored")
	}
	network.Close()
	if _, err := network.Endpoint("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("endpoint after network close = %v, want ErrClosed", err)
	}
	network.Close() // idempotent
}

func TestMemNetworkLatency(t *testing.T) {
	const delay = 50 * time.Millisecond
	network := NewMemNetwork(func(from, to wire.Addr) time.Duration { return delay })
	defer network.Close()
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var deliveredAt time.Time
	b.SetHandler(func([]byte) {
		mu.Lock()
		deliveredAt = time.Now()
		mu.Unlock()
	})
	sentAt := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	eventually(t, time.Second, "delayed delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return !deliveredAt.IsZero()
	})
	if elapsed := deliveredAt.Sub(sentAt); elapsed < delay/2 {
		t.Fatalf("delivered after %v, want >= ~%v", elapsed, delay)
	}
}

// TestMailboxDropCounter fills an endpoint's mailbox behind a blocked
// handler and checks overflow is counted — both on the network itself and on
// an attached live registry — instead of vanishing silently.
func TestMailboxDropCounter(t *testing.T) {
	network := NewMemNetwork(nil)
	defer network.Close()
	reg := live.NewRegistry()
	network.SetMetrics(reg)
	a, err := network.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := network.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	// Unblock the handler before network.Close runs (defers are LIFO), or
	// the delivery goroutine would hang the shutdown wait.
	defer close(block)
	first := make(chan struct{})
	var firstOnce sync.Once
	b.SetHandler(func([]byte) {
		firstOnce.Do(func() { close(first) })
		<-block
	})

	// One datagram parks in the handler; 1024 fill the mailbox; everything
	// beyond must overflow. Waiting for the handler to park first makes the
	// accounting below exact.
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	<-first
	const extra = 50
	for i := 0; i < 1024+extra; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := network.MailboxDrops(); got != extra {
		t.Fatalf("MailboxDrops = %d, want %d", got, extra)
	}
	snap := reg.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "omcast_node_mailbox_dropped_total" {
			found = true
			if m.Value != extra {
				t.Fatalf("metric = %v, want %d", m.Value, extra)
			}
		}
	}
	if !found {
		t.Fatal("omcast_node_mailbox_dropped_total not registered")
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := a.Close(); err != nil {
			t.Errorf("close a: %v", err)
		}
	}()
	b, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := b.Close(); err != nil {
			t.Errorf("close b: %v", err)
		}
	}()
	var mu sync.Mutex
	var got []byte
	b.SetHandler(func(data []byte) {
		mu.Lock()
		got = append([]byte(nil), data...)
		mu.Unlock()
	})
	if err := a.Send(b.Addr(), []byte("over udp")); err != nil {
		t.Fatal(err)
	}
	eventually(t, 2*time.Second, "udp datagram delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return string(got) == "over udp"
	})
}

func TestUDPTransportErrors(t *testing.T) {
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("not-an-addr", []byte("x")); err == nil {
		t.Fatal("send to garbage address succeeded")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("127.0.0.1:1", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if _, err := NewUDPTransport("999.999.999.999:70000"); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestUDPTransportMTUCeiling proves the gap between the wire layer's 64 KiB
// datagram cap and UDP's 65507-byte payload ceiling is real and handled: a
// membership reply that validates and would decode fine is still refused by
// Send with ErrOversize, counted on the transport and on the live registry.
func TestUDPTransportMTUCeiling(t *testing.T) {
	tr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := live.NewRegistry()
	tr.SetMetrics(reg)

	// Grow a maximally padded member list until the encoding crosses the UDP
	// ceiling, then trim the last ancestor back under the wire cap — landing
	// in the narrow window (65507, 65536] where wire accepts what UDP cannot
	// carry.
	longAddr := func(i, n int) wire.Addr {
		b := make([]byte, n)
		for j := range b {
			b[j] = 'a' + byte((i+j)%26)
		}
		return wire.Addr(b)
	}
	env := wire.Envelope{Type: wire.TypeMembershipReply, From: "s", Limit: 8}
	for i := 0; ; i++ {
		m := wire.MemberInfo{Addr: longAddr(i, wire.MaxAddrLen), Spare: 1, Bandwidth: 3}
		for a := 0; a < wire.MaxAncestors; a++ {
			m.Ancestors = append(m.Ancestors, longAddr(i+a+1, wire.MaxAddrLen))
		}
		env.Members = append(env.Members, m)
		if data, err := wire.EncodeBinary(env); err != nil {
			t.Fatal(err)
		} else if len(data) > MaxUDPDatagram {
			break
		}
	}
	data, err := wire.EncodeBinary(env)
	if err != nil {
		t.Fatal(err)
	}
	last := &env.Members[len(env.Members)-1]
	for len(data) > wire.MaxDatagram {
		trim := len(data) - wire.MaxDatagram
		if k := len(last.Ancestors) - 1; k >= 0 {
			if anc := last.Ancestors[k]; trim >= len(anc) {
				last.Ancestors = last.Ancestors[:k]
			} else {
				last.Ancestors[k] = anc[:len(anc)-trim]
			}
		} else {
			last.Addr = last.Addr[:len(last.Addr)-trim]
		}
		if data, err = wire.EncodeBinary(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := wire.Validate(env); err != nil {
		t.Fatalf("oversize-for-UDP envelope should still validate: %v", err)
	}
	if len(data) <= MaxUDPDatagram || len(data) > wire.MaxDatagram {
		t.Fatalf("encoded %d bytes, want in (%d, %d]", len(data), MaxUDPDatagram, wire.MaxDatagram)
	}
	if _, err := wire.DecodeBinary(data); err != nil {
		t.Fatalf("the same datagram should decode if it ever arrived: %v", err)
	}

	if err := tr.Send(tr.Addr(), data); !errors.Is(err, ErrOversize) {
		t.Fatalf("Send = %v, want ErrOversize", err)
	}
	if got := tr.OversizeDrops(); got != 1 {
		t.Fatalf("OversizeDrops = %d, want 1", got)
	}
	found := false
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == "omcast_node_udp_oversize_dropped_total" {
			found = true
			if m.Value != 1 {
				t.Fatalf("metric = %v, want 1", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("omcast_node_udp_oversize_dropped_total not registered")
	}
	// A datagram at exactly the ceiling goes through to the socket.
	if err := tr.Send(tr.Addr(), make([]byte, MaxUDPDatagram)); errors.Is(err, ErrOversize) {
		t.Fatalf("Send at exactly MaxUDPDatagram refused: %v", err)
	}
}

// TestUDPCrashRestartRebind is the endpoint crash/restart drill: a member
// dies abruptly, its port frees up (stale sends fail ErrClosed), and a reborn
// node on the same port rejoins the overlay.
func TestUDPCrashRestartRebind(t *testing.T) {
	srcTr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srcCfg := fast
	srcCfg.Source = true
	srcCfg.Bandwidth = 4
	src := New(srcCfg, srcTr)
	src.Start()
	defer src.Kill()

	cfg := fast
	cfg.Bandwidth = 3
	cfg.Bootstrap = []wire.Addr{src.Addr()}
	tr1, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := tr1.Addr()
	n1 := New(cfg, tr1)
	n1.Start()
	eventually(t, 10*time.Second, "first incarnation attached", func() bool {
		return n1.Stats().Attached
	})

	n1.Kill() // crash, not leave: the socket closes with no goodbye
	if err := tr1.Send(src.Addr(), []byte("stale")); !errors.Is(err, ErrClosed) {
		t.Fatalf("stale send after crash = %v, want ErrClosed", err)
	}

	// Rebind the very same port and rejoin. The bind itself must succeed
	// immediately — UDP has no TIME_WAIT — and the reborn node must be
	// re-admitted even though the source may still remember its previous life.
	tr2, err := NewUDPTransport(string(port))
	if err != nil {
		t.Fatalf("rebinding %s: %v", port, err)
	}
	n2 := New(cfg, tr2)
	n2.Start()
	defer n2.Kill()
	eventually(t, 10*time.Second, "reborn node rejoined on the same port", func() bool {
		return n2.Stats().Attached
	})
}

// TestNodesOverUDP boots a small overlay on real loopback sockets.
func TestNodesOverUDP(t *testing.T) {
	srcTr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srcCfg := fast
	srcCfg.Source = true
	srcCfg.Bandwidth = 4
	src := New(srcCfg, srcTr)
	src.Start()
	defer src.Kill()

	var nodes []*Node
	for i := 0; i < 5; i++ {
		tr, err := NewUDPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := fast
		cfg.Bandwidth = 3
		cfg.Bootstrap = []wire.Addr{src.Addr()}
		nd := New(cfg, tr)
		nodes = append(nodes, nd)
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Kill()
		}
	}()
	eventually(t, 10*time.Second, "udp overlay attached and streaming", func() bool {
		for _, nd := range nodes {
			s := nd.Stats()
			if !s.Attached || s.HighestPacket < 20 {
				return false
			}
		}
		return true
	})
}
