package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// jsonFinding is the -format json record for one diagnostic.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// WriteJSON renders diagnostics as a JSON array of findings. Paths are made
// relative to root when possible (stable across checkouts; root may be "").
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton, minimal but valid: one run, one rule descriptor per
// distinct rule, one result per diagnostic. GitHub code scanning and most CI
// annotators consume exactly this subset.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Rules          []sarifRuleDesc `json:"rules"`
}

type sarifRuleDesc struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Artifact URIs are
// root-relative with forward slashes.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	// The driver always advertises its full rule set (stable order), so a
	// clean run still documents what was checked.
	ruleDescs := []sarifRuleDesc{}
	for _, r := range Rules() {
		ruleDescs = append(ruleDescs, sarifRuleDesc{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	ruleDescs = append(ruleDescs,
		sarifRuleDesc{ID: RuleBadDirective, ShortDescription: sarifMessage{Text: "malformed //lint:ignore suppression directive"}},
		sarifRuleDesc{ID: RuleStaleSuppression, ShortDescription: sarifMessage{Text: "suppression directive that silences nothing"}},
	)

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI: filepath.ToSlash(relPath(root, d.Pos.Filename)),
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "omcast-lint", Rules: ruleDescs}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// WriteStats renders the per-rule statistics table for -stats.
func WriteStats(w io.Writer, res Result) {
	fmt.Fprintf(w, "%-20s %9s %10s %10s\n", "rule", "findings", "suppressed", "wall_ms")
	for _, s := range res.Stats {
		fmt.Fprintf(w, "%-20s %9d %10d %10.2f\n", s.Rule, s.Findings, s.Suppressed, s.Millis)
	}
	fmt.Fprintf(w, "%-20s %9s %10s %10.2f\n", "total", "", "", res.TotalMillis)
}

// StatsMap flattens a run's statistics into the flat key space the BENCH
// artifact records ("lint/wall_ms", "lint/findings/<rule>", ...).
func StatsMap(res Result) map[string]float64 {
	out := map[string]float64{"lint/wall_ms": res.TotalMillis}
	for _, s := range res.Stats {
		out["lint/findings/"+s.Rule] = float64(s.Findings)
		out["lint/suppressed/"+s.Rule] = float64(s.Suppressed)
	}
	return out
}

func relPath(root, path string) string {
	if root == "" {
		return path
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
