// Command omcast-trace produces and consumes the JSONL trace stream.
//
// With no subcommand it runs one simulated session and streams its overlay
// events (joins, rejoins, departures, failures, ROST switches — plus CER
// repair outcomes with -stream, periodic metric snapshots with -sample, and
// causal episode spans with -spans) as JSON lines — a machine-readable feed
// for offline analysis or visualisation. The stream is deterministic in
// -seed.
//
//	omcast-trace -alg rost -size 2000 > session.jsonl
//	omcast-trace -alg min-depth -size 500 -measure 30m | jq .event | sort | uniq -c
//	omcast-trace -size 500 -small -sample 5m | jq 'select(.event=="sample")'
//	omcast-trace -size 500 -small -stream -group 3 | jq 'select(.event=="repair")'
//	omcast-trace -size 500 -small -spans | jq 'select(.event=="span")'
//
// With -fleet it instead runs a federated multi-source fleet session in
// which one source is killed mid-stream, and emits the failover spans
// (detect + assignment-attempt children); piping them into analyze yields
// p50/p99 failover latency broken down by cause.
//
//	omcast-trace -fleet -size 500 -measure 5m | omcast-trace analyze
//
// The analyze subcommand digests a span-bearing trace (from this command's
// -spans mode, `omcast-chaos -trace-out`, or a live node's /debug/trace)
// into episode statistics: per-kind counts and outcomes, duration
// percentiles (the rejoin waterfall, repair round-trips, starving windows),
// and stage offset/duration breakdowns within episodes.
//
//	omcast-trace -size 500 -small -stream -spans | omcast-trace analyze
//	omcast-trace analyze session.jsonl
//
// The convert subcommand re-renders spans for other tools; -format perfetto
// emits Chrome trace-event JSON (one track per member/node) loadable in
// https://ui.perfetto.dev or chrome://tracing.
//
//	omcast-trace -size 500 -small -stream -spans | omcast-trace convert -format perfetto > trace.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"omcast"
	"omcast/internal/tracing"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "analyze":
			return runAnalyze(os.Args[2:])
		case "convert":
			return runConvert(os.Args[2:])
		}
	}
	return runSim()
}

// openInput resolves a subcommand's trace source: the sole positional
// argument as a file, or stdin when none is given.
func openInput(fs *flag.FlagSet) (io.ReadCloser, error) {
	switch fs.NArg() {
	case 0:
		return io.NopCloser(os.Stdin), nil
	case 1:
		return os.Open(fs.Arg(0))
	default:
		return nil, fmt.Errorf("at most one input file, got %d", fs.NArg())
	}
}

// runAnalyze digests a span trace into episode statistics.
func runAnalyze(args []string) int {
	fs := flag.NewFlagSet("omcast-trace analyze", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: omcast-trace analyze [trace.jsonl]  (stdin when omitted)")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	in, err := openInput(fs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 2
	}
	defer in.Close()
	tr, err := tracing.Parse(bufio.NewReader(in))
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	a := tracing.Analyze(tr)
	if a.TotalSpans == 0 {
		fmt.Fprintln(os.Stderr, "omcast-trace: no spans in input (produce them with -spans, -trace-out or /debug/trace)")
	}
	out := bufio.NewWriter(os.Stdout)
	a.WriteText(out)
	if err := out.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	return 0
}

// runConvert re-renders a span trace in another tool's format.
func runConvert(args []string) int {
	fs := flag.NewFlagSet("omcast-trace convert", flag.ExitOnError)
	format := fs.String("format", "perfetto", "output format: perfetto (Chrome trace-event JSON)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: omcast-trace convert -format perfetto [trace.jsonl]  (stdin when omitted)")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *format != "perfetto" {
		fmt.Fprintf(os.Stderr, "omcast-trace: unknown format %q (supported: perfetto)\n", *format)
		return 2
	}
	in, err := openInput(fs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 2
	}
	defer in.Close()
	spans, err := tracing.ReadSpans(bufio.NewReader(in))
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	out := bufio.NewWriter(os.Stdout)
	if err := tracing.WritePerfetto(out, spans); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	return 0
}

// runSim is the original mode: run one simulation, stream its trace.
func runSim() int {
	var (
		algName = flag.String("alg", "rost", "algorithm: min-depth, longest-first, relaxed-bo, relaxed-to, rost")
		seed    = flag.Int64("seed", 1, "random seed")
		size    = flag.Int("size", 1000, "steady-state member count")
		warmup  = flag.Duration("warmup", 30*time.Minute, "warm-up horizon")
		measure = flag.Duration("measure", time.Hour, "measurement window")
		small   = flag.Bool("small", false, "use the reduced underlay")
		sample  = flag.Duration("sample", 0, "emit a metrics snapshot every interval of virtual time (0 = off)")
		stream  = flag.Bool("stream", false, "run the packet-level CER layer too (adds repair events)")
		group   = flag.Int("group", 3, "CER recovery group size (with -stream)")
		spans   = flag.Bool("spans", false, "emit causal episode spans (rejoin/repair/switch/stall timelines)")
		fleetMd = flag.Bool("fleet", false, "run a federated multi-source session with a source kill instead; emits failover spans")
	)
	flag.Parse()

	if *fleetMd {
		return runFleetSim(*seed, *size, *measure)
	}

	alg, ok := map[string]omcast.Algorithm{
		"min-depth":     omcast.MinimumDepth,
		"longest-first": omcast.LongestFirst,
		"relaxed-bo":    omcast.RelaxedBandwidthOrdered,
		"relaxed-to":    omcast.RelaxedTimeOrdered,
		"rost":          omcast.ROST,
	}[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "omcast-trace: unknown algorithm %q\n", *algName)
		return 2
	}
	cfg := omcast.Config{
		Seed:       *seed,
		Algorithm:  alg,
		TargetSize: *size,
		Warmup:     *warmup,
		Measure:    *measure,
	}
	if *small {
		cfg.Topology = omcast.SmallTopology()
	}
	out := bufio.NewWriter(os.Stdout)
	topts := omcast.TraceOptions{SampleEvery: *sample, Spans: *spans}
	var res omcast.TreeResult
	var err error
	if *stream {
		var sres omcast.StreamResult
		sres, err = omcast.RunStreamingWithTrace(cfg, omcast.StreamConfig{GroupSize: *group}, out, topts)
		res = sres.TreeResult
	} else {
		res, err = omcast.RunWithTraceOptions(cfg, out, topts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: flushing: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: %.2f disruptions/node, %.0fms delay, %d switches\n",
		res.Algorithm, res.AvgDisruptions, res.AvgServiceDelayMS, res.Switches)
	return 0
}

// runFleetSim runs a federated multi-source session in which one source is
// killed a third of the way through the horizon, streaming the resulting
// failover spans (with their detect and assignment-attempt children) as
// JSONL — ready to pipe into `omcast-trace analyze` for p50/p99 failover
// latency.
func runFleetSim(seed int64, viewers int, horizon time.Duration) int {
	out := bufio.NewWriter(os.Stdout)
	var spans []tracing.Span
	cfg := omcast.FleetConfig{
		Seed:           seed,
		Sources:        3,
		TreesPerSource: 2,
		TreeCapacity:   (viewers + 3) / 4,
		Viewers:        viewers,
		Horizon:        horizon,
		Kills:          []omcast.FleetEvent{{At: horizon / 3, Source: 0}},
		Trace: tracing.RecorderFunc(func(sp tracing.Span) {
			spans = append(spans, sp)
		}),
	}
	res, err := omcast.RunFleet(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	if err := tracing.WriteJSONL(out, spans); err == nil {
		err = out.Flush()
	} else {
		_ = out.Flush()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "fleet: %d viewers, %d failovers, %d reassigned, p99 reassign %.3fs, outage ratio %.4f\n",
		res.Viewers, res.Failovers, res.Reassigned, res.P99Reassign.Seconds(), res.OutageRatio)
	return 0
}
