//go:build race

package node

// raceEnabled reports whether the race detector is compiled in; eventually()
// scales its deadlines by it, since instrumentation slows this workload
// severalfold.
const raceEnabled = true
