// Package eventsim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of timed events.
// Events scheduled for the same instant fire in scheduling order, which keeps
// runs bit-for-bit reproducible for a fixed seed and event program. All
// simulated time is expressed as time.Duration offsets from the start of the
// simulation.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"omcast/internal/metrics"
)

// Handler is the callback invoked when an event fires. The current simulator
// is passed in so handlers can schedule follow-up events.
type Handler func(sim *Simulator)

// ErrStopped is returned by Run when the simulation was halted by Stop before
// the horizon was reached.
var ErrStopped = errors.New("eventsim: simulation stopped")

// event is a single queued callback.
type event struct {
	at      time.Duration
	schedAt time.Duration // when Schedule was called (queue-residence metric)
	seq     uint64        // tie-break: FIFO among equal timestamps
	handler Handler
	// canceled events stay in the heap but are skipped when popped; this is
	// cheaper than O(n) removal and keeps Cancel O(1).
	canceled bool
	index    int
}

// EventID identifies a scheduled event so it can be canceled. The zero value
// is never a valid ID.
type EventID struct {
	ev *event
}

// Valid reports whether the ID refers to a scheduled event.
func (id EventID) Valid() bool { return id.ev != nil }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		// heap.Push is only ever called by this package with *event; a
		// mismatch is a programming error surfaced loudly in tests.
		panic(fmt.Sprintf("eventsim: pushed %T, want *event", x))
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// kernelMetrics holds the kernel's optional instruments. All pointers are
// nil until Instrument is called; the metric types' nil-safe methods make
// every update a single predictable branch on the uninstrumented path.
type kernelMetrics struct {
	scheduled *metrics.Counter
	fired     *metrics.Counter
	canceled  *metrics.Counter
	residence *metrics.Histogram
}

// Simulator is a single-threaded discrete-event scheduler. The zero value is
// not usable; construct with New.
type Simulator struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	// processed counts events that actually fired (canceled events excluded).
	processed uint64
	// depthHigh tracks the largest queue depth ever observed; it is plain
	// kernel state (one int compare per Schedule) so the instrumented
	// hot path stays free of gauge writes.
	depthHigh int
	met       kernelMetrics
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Instrument registers the kernel's instruments on reg and starts feeding
// them: events scheduled/fired/canceled, current and high-water queue depth,
// and a histogram of virtual queue-residence time (fire time minus schedule
// time — how far ahead the simulation plans). All instruments are keyed in
// virtual time, so a fixed seed yields byte-identical snapshots; wall-clock
// kernel cost is profiled with -cpuprofile instead (see DESIGN.md §9).
func (s *Simulator) Instrument(reg *metrics.Registry) {
	s.met = kernelMetrics{
		scheduled: reg.Counter("omcast_sim_events_scheduled_total", "Events registered with the kernel."),
		fired:     reg.Counter("omcast_sim_events_fired_total", "Events whose handler ran (canceled events excluded)."),
		canceled:  reg.Counter("omcast_sim_events_canceled_total", "Events canceled before firing."),
		residence: reg.Histogram("omcast_sim_event_residence_seconds",
			"Virtual seconds an event spent queued between Schedule and firing.",
			metrics.LatencyBuckets()),
	}
	// The queue-depth gauges are func-backed: they read kernel state at
	// snapshot time instead of writing a gauge on every Schedule and fire.
	reg.GaugeFunc("omcast_sim_queue_depth",
		"Events currently queued, including canceled tombstones.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("omcast_sim_queue_depth_high_water",
		"Largest queue depth observed.",
		func() float64 { return float64(s.depthHigh) })
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Processed returns the number of events that have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events still queued, including canceled
// events that have not yet been popped.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers handler to fire at absolute virtual time at. Times in
// the past (before Now) are clamped to Now, so the event fires next. The
// returned EventID can be passed to Cancel.
func (s *Simulator) Schedule(at time.Duration, handler Handler) EventID {
	if handler == nil {
		panic("eventsim: Schedule called with nil handler")
	}
	if at < s.now {
		at = s.now
	}
	ev := &event{at: at, schedAt: s.now, seq: s.seq, handler: handler}
	s.seq++
	heap.Push(&s.queue, ev)
	if len(s.queue) > s.depthHigh {
		s.depthHigh = len(s.queue)
	}
	s.met.scheduled.Inc()
	return EventID{ev: ev}
}

// ScheduleAfter registers handler to fire delay after the current time.
// Negative delays are clamped to zero.
func (s *Simulator) ScheduleAfter(delay time.Duration, handler Handler) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.Schedule(s.now+delay, handler)
}

// Cancel prevents a scheduled event from firing. Canceling an already-fired
// or already-canceled event is a no-op. It reports whether the event was
// live before the call.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.canceled || id.ev.index < 0 {
		return false
	}
	id.ev.canceled = true
	s.met.canceled.Inc()
	return true
}

// Stop halts the run loop after the currently firing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events in timestamp order until the queue is empty or the
// clock would pass horizon. Events exactly at the horizon still fire. It
// returns ErrStopped if Stop was called, otherwise nil.
func (s *Simulator) Run(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > horizon {
			// Leave future events queued; advance the clock to the horizon
			// so a subsequent Run continues from there.
			s.now = horizon
			return nil
		}
		popped, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return errors.New("eventsim: corrupt event queue")
		}
		if popped.canceled {
			continue
		}
		s.now = popped.at
		popped.handler(s)
		s.processed++
		s.met.fired.Inc()
		// float64(d)*1e-9 instead of Seconds(): one multiply, not a divmod
		// decomposition — this runs once per fired event.
		s.met.residence.Observe(float64(popped.at-popped.schedAt) * 1e-9)
		if s.stopped {
			return ErrStopped
		}
	}
	if horizon > s.now && horizon != MaxHorizon {
		s.now = horizon
	}
	return nil
}

// MaxHorizon is a horizon value meaning "run until the queue drains".
const MaxHorizon = time.Duration(math.MaxInt64)

// RunAll processes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() error {
	return s.Run(MaxHorizon)
}
