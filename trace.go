package omcast

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"omcast/internal/churn"
	"omcast/internal/eventsim"
	"omcast/internal/overlay"
)

// TraceEvent is one line of the JSONL event stream a run can emit (see
// Config-independent RunWithTrace). Events describe overlay dynamics at the
// granularity a downstream analysis or visualisation needs: membership
// changes, failures, and ROST switches.
type TraceEvent struct {
	// T is the virtual time in seconds.
	T float64 `json:"t"`
	// Event is one of "join", "rejoin", "depart", "failure", "switch".
	Event string `json:"event"`
	// Member is the subject member ID.
	Member int64 `json:"member"`
	// Parent is the member's parent after a join/rejoin (0 for the source).
	Parent int64 `json:"parent,omitempty"`
	// Depth is the member's layer after a join/rejoin.
	Depth int `json:"depth,omitempty"`
	// Bandwidth is the member's outbound bandwidth on join.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Disrupted is the descendant count a failure disrupted.
	Disrupted int `json:"disrupted,omitempty"`
	// Demoted is the former parent in a switch event.
	Demoted int64 `json:"demoted,omitempty"`
}

// tracer serialises events to a writer; encoding errors surface once.
type tracer struct {
	enc *json.Encoder
	err error
}

func newTracer(w io.Writer) *tracer {
	return &tracer{enc: json.NewEncoder(w)}
}

func (tr *tracer) emit(ev TraceEvent) {
	if tr.err != nil {
		return
	}
	tr.err = tr.enc.Encode(ev)
}

// RunWithTrace executes a tree-level run like Run while streaming overlay
// events to w as JSON lines. The stream is deterministic in cfg.Seed, making
// it suitable for golden-file comparisons and offline visualisation.
func RunWithTrace(cfg Config, w io.Writer) (TreeResult, error) {
	if w == nil {
		return Run(cfg)
	}
	tr := newTracer(w)
	var s *session
	hooks := churn.Hooks{
		OnJoin: func(sim *eventsim.Simulator, m *overlay.Member) {
			tr.emit(joinEvent("join", sim.Now(), m))
		},
		OnRejoin: func(sim *eventsim.Simulator, m *overlay.Member) {
			tr.emit(joinEvent("rejoin", sim.Now(), m))
		},
		OnFailure: func(sim *eventsim.Simulator, failed *overlay.Member) {
			disrupted := 0
			if failed.Attached() {
				disrupted = s.tree.SubtreeSize(failed) - 1
			}
			tr.emit(TraceEvent{
				T:         sim.Now().Seconds(),
				Event:     "failure",
				Member:    int64(failed.ID),
				Disrupted: disrupted,
			})
		},
		OnDepart: func(sim *eventsim.Simulator, id overlay.MemberID) {
			tr.emit(TraceEvent{T: sim.Now().Seconds(), Event: "depart", Member: int64(id)})
		},
	}
	var err error
	s, err = newSession(cfg, hooks)
	if err != nil {
		return TreeResult{}, err
	}
	if s.protocol != nil {
		s.protocol.SetOnSwitch(func(now time.Duration, promoted, demoted overlay.MemberID) {
			tr.emit(TraceEvent{
				T:       now.Seconds(),
				Event:   "switch",
				Member:  int64(promoted),
				Demoted: int64(demoted),
			})
		})
	}
	if err := s.run(); err != nil {
		return TreeResult{}, err
	}
	if tr.err != nil {
		return TreeResult{}, fmt.Errorf("omcast: writing trace: %w", tr.err)
	}
	return s.treeResult(), nil
}

func joinEvent(kind string, now time.Duration, m *overlay.Member) TraceEvent {
	ev := TraceEvent{
		T:         now.Seconds(),
		Event:     kind,
		Member:    int64(m.ID),
		Depth:     m.Depth(),
		Bandwidth: m.Bandwidth,
	}
	if p := m.Parent(); p != nil {
		ev.Parent = int64(p.ID)
	}
	return ev
}
