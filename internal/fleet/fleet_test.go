package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"omcast/internal/metrics"
	"omcast/internal/tracing"
)

// killConfig is the canonical source-kill scenario: three sources, one dies
// five seconds in, the orphans fail over to the survivors.
func killConfig() Config {
	return Config{
		Seed:              42,
		Sources:           3,
		TreesPerSource:    2,
		TreeCapacity:      16,
		Viewers:           40,
		Horizon:           30 * time.Second,
		HeartbeatInterval: 500 * time.Millisecond,
		SuspectMisses:     2,
		DownMisses:        4,
		RejoinBackoffBase: 100 * time.Millisecond,
		RejoinBackoffMax:  2 * time.Second,
		AdmitPerInterval:  4,
		MaxReassignTime:   6 * time.Second,
		MaxOutageRatio:    0.25,
		Kills:             []TimedEvent{{At: 5 * time.Second, Source: 0}},
	}
}

func TestFailoverBound(t *testing.T) {
	res, err := Run(killConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Orphaned == 0 {
		t.Fatal("source kill orphaned no viewers")
	}
	if res.Reassigned != res.Orphaned {
		t.Fatalf("reassigned %d of %d orphans", res.Reassigned, res.Orphaned)
	}
	if res.Unassigned != 0 {
		t.Fatalf("%d viewers still orphaned at horizon", res.Unassigned)
	}
	if len(res.BoundViolations) > 0 {
		t.Fatalf("bound violations: %v", res.BoundViolations)
	}
	// Detection alone takes DownMisses heartbeat intervals, so the worst
	// reassignment cannot be instant.
	if res.MaxReassign < 2*500*time.Millisecond {
		t.Fatalf("max reassign %v implausibly fast for a 4-miss detector", res.MaxReassign)
	}
	if res.P99Reassign < res.P50Reassign {
		t.Fatalf("p99 %v < p50 %v", res.P99Reassign, res.P50Reassign)
	}
	// The dead source's trees must end empty and down.
	for _, tl := range res.TreeLoads {
		if tl.Source == 0 {
			if tl.Viewers != 0 || tl.State != "down" {
				t.Fatalf("dead source tree %+v not empty/down", tl)
			}
			if tl.Failovers == 0 {
				t.Fatalf("dead source tree %+v recorded no failovers", tl)
			}
		}
	}
}

func TestCascadingKills(t *testing.T) {
	cfg := killConfig()
	cfg.Seed = 43
	cfg.TreeCapacity = 24 // the last source standing must hold all 40 viewers
	cfg.Kills = []TimedEvent{
		{At: 5 * time.Second, Source: 0},
		{At: 15 * time.Second, Source: 1},
	}
	cfg.MaxOutageRatio = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Viewers that failed over to source 1 were orphaned a second time.
	if res.Orphaned <= 40/3 {
		t.Fatalf("cascade orphaned only %d viewers", res.Orphaned)
	}
	if res.Unassigned != 0 || res.Reassigned != res.Orphaned {
		t.Fatalf("cascade left orphans: %+v", res)
	}
	if len(res.BoundViolations) > 0 {
		t.Fatalf("bound violations: %v", res.BoundViolations)
	}
}

func TestDrainZeroOutage(t *testing.T) {
	cfg := killConfig()
	cfg.Kills = nil
	cfg.Drains = []TimedEvent{{At: 5 * time.Second, Source: 0}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drained != 1 {
		t.Fatalf("drained %d sources, want 1", res.Drained)
	}
	if res.DrainMigrations == 0 {
		t.Fatal("drain migrated no viewers")
	}
	if res.OutageRatio != 0 {
		t.Fatalf("drain caused outage ratio %v, want 0 (make-before-break)", res.OutageRatio)
	}
	if res.Orphaned != 0 || res.Unassigned != 0 {
		t.Fatalf("drain orphaned viewers: %+v", res)
	}
	for _, tl := range res.TreeLoads {
		if tl.Source == 0 && (tl.Viewers != 0 || tl.State != "drained") {
			t.Fatalf("drained source tree %+v not empty/drained", tl)
		}
	}
}

func TestRebalanceConverges(t *testing.T) {
	cfg := Config{
		Seed:              7,
		Sources:           2,
		TreesPerSource:    2,
		TreeCapacity:      16,
		Viewers:           30,
		Horizon:           30 * time.Second,
		HeartbeatInterval: 500 * time.Millisecond,
		LoadSkew:          0.8,
		RebalanceEvery:    time.Second,
		RebalanceSlack:    2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced == 0 {
		t.Fatal("skewed load triggered no rebalancing")
	}
	min, max := cfg.TreeCapacity, 0
	for _, tl := range res.TreeLoads {
		if tl.Viewers < min {
			min = tl.Viewers
		}
		if tl.Viewers > max {
			max = tl.Viewers
		}
	}
	if max-min > cfg.RebalanceSlack {
		t.Fatalf("final spread %d exceeds slack %d: %+v", max-min, cfg.RebalanceSlack, res.TreeLoads)
	}
}

func TestFlashCrowdAdmissionPaced(t *testing.T) {
	cfg := killConfig()
	cfg.Kills = nil
	cfg.Viewers = 4
	cfg.Arrivals = []Burst{{At: 2 * time.Second, Count: 50}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewers != 54 {
		t.Fatalf("viewers %d, want 54", res.Viewers)
	}
	if res.Assigned != 54 {
		t.Fatalf("assigned %d of 54 within horizon", res.Assigned)
	}
	// Pacing must have rejected some burst arrivals: the burst exceeds one
	// interval's fleet-wide admission budget (3 sources x 4).
	if res.Attempts <= res.Viewers {
		t.Fatalf("attempts %d suggest no admission pacing", res.Attempts)
	}
}

// churnedConfig exercises every feature at once for determinism checks.
func churnedConfig() Config {
	cfg := killConfig()
	cfg.MeanLifetime = 40 * time.Second
	cfg.LoadSkew = 0.3
	cfg.RebalanceEvery = 2 * time.Second
	cfg.Arrivals = []Burst{{At: 10 * time.Second, Count: 12}}
	cfg.Drains = []TimedEvent{{At: 18 * time.Second, Source: 2}}
	cfg.MaxOutageRatio = 0 // churned departures can strand an episode mid-backoff
	cfg.MaxReassignTime = 0
	return cfg
}

func runWithSpans(t *testing.T, cfg Config) (Result, []tracing.Span) {
	t.Helper()
	var spans []tracing.Span
	cfg.Trace = tracing.RecorderFunc(func(sp tracing.Span) { spans = append(spans, sp) })
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, spans
}

func TestRunDeterministic(t *testing.T) {
	encode := func() ([]byte, []byte) {
		res, spans := runWithSpans(t, churnedConfig())
		rj, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tracing.WriteJSONL(&buf, spans); err != nil {
			t.Fatal(err)
		}
		return rj, buf.Bytes()
	}
	r1, s1 := encode()
	r2, s2 := encode()
	if !bytes.Equal(r1, r2) {
		t.Fatalf("results differ across reruns:\n%s\n%s", r1, r2)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("span streams differ across reruns")
	}
}

func TestFailoverSpans(t *testing.T) {
	res, spans := runWithSpans(t, killConfig())
	byID := make(map[string]tracing.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	roots, assigns, detects := 0, 0, 0
	for _, sp := range spans {
		switch {
		case sp.Kind == tracing.KindFailover && sp.Parent == "":
			roots++
			cause := ""
			for _, a := range sp.Attrs {
				if a.K == "cause" {
					cause = a.V
				}
			}
			if cause != "source-down" {
				t.Fatalf("failover span cause %q, want source-down", cause)
			}
			if sp.Outcome != "reassigned" {
				t.Fatalf("failover span outcome %q", sp.Outcome)
			}
		case sp.Kind == tracing.KindAssign:
			assigns++
			if parent, ok := byID[sp.Parent]; !ok || parent.Kind != tracing.KindFailover {
				t.Fatalf("assign span %s has no failover parent", sp.ID)
			}
		case sp.Kind == tracing.KindDetect:
			detects++
		}
	}
	if roots != res.Orphaned {
		t.Fatalf("%d failover spans for %d orphans", roots, res.Orphaned)
	}
	if detects != res.Orphaned {
		t.Fatalf("%d detect stages for %d orphans", detects, res.Orphaned)
	}
	if assigns < res.Reassigned {
		t.Fatalf("%d assign attempts < %d reassignments", assigns, res.Reassigned)
	}
	// The analyzer must surface these episodes as failover latency stats.
	var buf bytes.Buffer
	if err := tracing.WriteJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	parsed, err := tracing.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := tracing.Analyze(parsed)
	if a.Failover == nil || a.Failover.Count != res.Orphaned {
		t.Fatalf("analyzer failover stats %+v, want count %d", a.Failover, res.Orphaned)
	}
	if len(a.Failover.ByCause["source-down"]) != res.Orphaned {
		t.Fatalf("analyzer cause breakdown %+v", a.Failover.ByCause)
	}
	var text bytes.Buffer
	if err := a.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "failover latency") ||
		!strings.Contains(text.String(), "cause source-down") {
		t.Fatalf("analyze text missing failover section:\n%s", text.String())
	}
}

func TestDrainSpans(t *testing.T) {
	cfg := killConfig()
	cfg.Kills = nil
	cfg.Drains = []TimedEvent{{At: 5 * time.Second, Source: 1}}
	res, spans := runWithSpans(t, cfg)
	drains := 0
	for _, sp := range spans {
		if sp.Kind != tracing.KindFailover || sp.Parent != "" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.K == "cause" && a.V == "drain" {
				drains++
				if sp.Outcome != "migrated" {
					t.Fatalf("drain span outcome %q", sp.Outcome)
				}
				if sp.Duration() != 0 {
					t.Fatalf("drain span duration %v, want 0 (make-before-break)", sp.Duration())
				}
			}
		}
	}
	if drains != res.DrainMigrations {
		t.Fatalf("%d drain spans for %d migrations", drains, res.DrainMigrations)
	}
}

func TestFleetMetrics(t *testing.T) {
	cfg := killConfig()
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(cfg.Horizon.Seconds())
	byName := make(map[string][]metrics.Metric)
	for _, m := range snap.Metrics {
		byName[m.Name] = append(byName[m.Name], m)
	}
	if got := byName["omcast_fleet_failovers_total"]; len(got) != 1 || got[0].Value != float64(res.Failovers) {
		t.Fatalf("failovers counter %+v, want %d", got, res.Failovers)
	}
	if got := byName["omcast_fleet_tree_viewers"]; len(got) != cfg.Sources*cfg.TreesPerSource {
		t.Fatalf("%d per-tree viewer gauges, want %d", len(got), cfg.Sources*cfg.TreesPerSource)
	}
	states := byName["omcast_fleet_source_state"]
	downSeen := false
	for _, m := range states {
		for _, l := range m.Labels {
			if l.Key == "source" && l.Value == "s0" && m.Value == float64(SourceDown) {
				downSeen = true
			}
		}
	}
	if !downSeen {
		t.Fatalf("source state gauges missing s0=down: %+v", states)
	}
	hist := byName["omcast_fleet_reassign_seconds"]
	if len(hist) != 1 || hist[0].Hist == nil || hist[0].Hist.Count != uint64(res.Reassigned) {
		t.Fatalf("reassign histogram %+v, want count %d", hist, res.Reassigned)
	}
}

func TestControllerAssignReleaseZeroAlloc(t *testing.T) {
	c := NewController(4, 2, 64)
	refs := make([]TreeRef, 0, 128)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			r, ok := c.Assign()
			if !ok {
				panic("assign failed with free capacity")
			}
			refs = append(refs, r)
		}
		for _, r := range refs {
			c.Release(r)
		}
		refs = refs[:0]
	})
	if allocs != 0 {
		t.Fatalf("Assign/Release allocated %.1f per cycle, want 0", allocs)
	}
}

func TestControllerPolicy(t *testing.T) {
	c := NewController(2, 2, 2)
	// Best fit ties toward the lowest index.
	if r, ok := c.Assign(); !ok || r != (TreeRef{Source: 0, Tree: 0}) {
		t.Fatalf("first assign -> %+v", r)
	}
	// Now (0,0) has less headroom than the rest; next pick is (0,1).
	if r, ok := c.Assign(); !ok || r != (TreeRef{Source: 0, Tree: 1}) {
		t.Fatalf("second assign -> %+v", r)
	}
	c.SetBlocked(1, true)
	c.Replenish(1)
	if r, ok := c.Assign(); !ok || r.Source != 0 {
		t.Fatalf("blocked source assigned: %+v", r)
	}
	// Source 0's single token is spent; nothing else is assignable.
	if _, ok := c.Assign(); ok {
		t.Fatal("assign succeeded with all sources paced or blocked")
	}
	if c.Headroom() != 1 {
		t.Fatalf("headroom %d, want 1 (blocked source excluded)", c.Headroom())
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero sources accepted")
	}
	if _, err := Run(Config{Sources: 1, Kills: []TimedEvent{{Source: 3}}}); err == nil {
		t.Fatal("out-of-range kill accepted")
	}
	if _, err := Run(Config{Sources: 1, Drains: []TimedEvent{{Source: -1}}}); err == nil {
		t.Fatal("out-of-range drain accepted")
	}
}
