// Package stream implements the packet-level streaming model behind the
// paper's CER evaluation (Section 6, Figures 12-14): a constant-rate stream
// (10 packets/second), per-member playback buffers, parent-failure outages
// (5 s detection + 10 s rejoin), Explicit Loss Notification down the failed
// subtree, recovery-group repair planned by the cer package, and the
// starving-time-ratio metric (total disruption time over total view time).
//
// The model is episode-lazy: packets flow implicitly while the tree is
// healthy (they arrive well inside the buffer), and exact per-sequence
// accounting happens only inside disruption episodes. This yields the same
// per-packet outcomes as simulating every hop of every packet at a tiny
// fraction of the event count (see DESIGN.md).
package stream

import (
	"sort"
	"time"

	"omcast/internal/cer"
	"omcast/internal/metrics"
	"omcast/internal/overlay"
	"omcast/internal/stats"
	"omcast/internal/topology"
	"omcast/internal/tracing"
	"omcast/internal/xrand"
)

// Paper defaults (Section 6, "Effects of Recovery Group Size").
const (
	// DefaultRate is the stream rate in packets per second.
	DefaultRate = 10.0
	// DefaultBuffer is the playback buffer ("5 seconds, or 50 packets").
	DefaultBuffer = 5 * time.Second
	// DefaultDetectDelay is the parent-failure detection time.
	DefaultDetectDelay = 5 * time.Second
	// DefaultRejoinDelay is the parent re-finding time after detection.
	DefaultRejoinDelay = 10 * time.Second
	// DefaultResidualMax bounds the uniform residual bandwidth members
	// donate to error recovery, in packets per second.
	DefaultResidualMax = 9.0
	// DefaultMinViewTime is the minimum view time for a member's starving
	// ratio to enter the statistics (very short visits carry no signal).
	DefaultMinViewTime = 30 * time.Second
)

// Config parameterises the streaming model.
type Config struct {
	Rate        float64       // packets per second; 0 means DefaultRate
	Buffer      time.Duration // playback buffer; 0 means DefaultBuffer
	DetectDelay time.Duration // 0 means DefaultDetectDelay
	RejoinDelay time.Duration // 0 means DefaultRejoinDelay
	// GroupSize is the recovery group size K.
	GroupSize int
	// Striped selects CER multi-source striping; false is the
	// single-source baseline.
	Striped bool
	// ResidualMax bounds each member's uniform residual bandwidth
	// (packets per second); 0 means DefaultResidualMax.
	ResidualMax float64
	// MeasureFrom discards starving ratios finalised before this time
	// (warm-up). Zero keeps everything.
	MeasureFrom time.Duration
	// MinViewTime: 0 means DefaultMinViewTime.
	MinViewTime time.Duration
	// OnEpisode, if non-nil, fires after each outage episode with the
	// orphan that planned recovery and its per-packet outcome (tracing).
	OnEpisode func(orphan *overlay.Member, failedAt time.Duration, repaired, lost int)
	// Trace, if non-nil, records each outage as a causal "repair" span
	// with detect/fetch/stall children (see internal/tracing). The nil
	// default adds one pointer check to the episode path and nothing else.
	Trace *tracing.Tracer
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = DefaultRate
	}
	if c.Buffer <= 0 {
		c.Buffer = DefaultBuffer
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = DefaultDetectDelay
	}
	if c.RejoinDelay <= 0 {
		c.RejoinDelay = DefaultRejoinDelay
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 1
	}
	if c.ResidualMax <= 0 {
		c.ResidualMax = DefaultResidualMax
	}
	if c.MinViewTime <= 0 {
		c.MinViewTime = DefaultMinViewTime
	}
	return c
}

// state is the per-member playback bookkeeping.
type state struct {
	viewStart time.Duration
	// residual is the bandwidth (packets per second) this member donates to
	// others' recovery.
	residual float64
	// starved accumulates playback slots whose packet missed its deadline.
	starved time.Duration
	// watermark is the highest missing sequence number already accounted,
	// so overlapping episodes are not double-counted.
	watermark int64
	// outageUntil marks the end of the member's current feed interruption;
	// a member cannot serve repairs while its own feed is down.
	outageUntil time.Duration
}

// Model tracks playback quality for every overlay member.
type Model struct {
	cfg      Config
	tree     *overlay.Tree
	delay    func(a, b topology.NodeID) time.Duration
	selector cer.Selector
	rng      *xrand.Source

	states map[overlay.MemberID]*state
	ratios []float64

	// Episodes counts processed outage episodes (one per orphan per
	// failure).
	Episodes int
	// ELNMessages counts explicit-loss-notification sends (one per edge of
	// each disrupted subtree per episode; sequence gaps are batched).
	ELNMessages int
	// RepairRequests counts recovery-group requests issued (orphans only —
	// descendants rely on upstream recovery thanks to ELN).
	RepairRequests int
	// PacketsRepaired and PacketsLost tally the orphans' missing packets.
	PacketsRepaired int
	PacketsLost     int

	met modelMetrics
}

// modelMetrics holds the model's optional instruments; all nil until
// Instrument is called (the metric types are nil-safe no-ops).
type modelMetrics struct {
	episodes *metrics.Counter
	eln      *metrics.Counter
	requests *metrics.Counter
	repaired *metrics.Counter
	lost     *metrics.Counter
}

// Instrument registers the CER streaming model's instruments on reg:
// episode, ELN-message and repair-request counters plus the per-packet
// repair outcome tallies. All counters advance in virtual time only.
func (m *Model) Instrument(reg *metrics.Registry) {
	m.met = modelMetrics{
		episodes: reg.Counter("omcast_cer_episodes_total", "Outage episodes processed (one per orphan per failure)."),
		eln:      reg.Counter("omcast_cer_eln_messages_total", "Explicit-loss-notification messages sent down disrupted subtrees."),
		requests: reg.Counter("omcast_cer_repair_requests_total", "Recovery-group repair requests issued by orphans."),
		repaired: reg.Counter("omcast_cer_packets_repaired_total", "Orphan packets recovered in time by the recovery group."),
		lost:     reg.Counter("omcast_cer_packets_lost_total", "Orphan packets missing their playback deadline despite recovery."),
	}
}

// NewModel builds a streaming model over tree. selector chooses recovery
// groups; delay supplies underlay latencies; rng draws residual bandwidths.
func NewModel(tree *overlay.Tree, delay func(a, b topology.NodeID) time.Duration, selector cer.Selector, rng *xrand.Source, cfg Config) *Model {
	return &Model{
		cfg:      cfg.withDefaults(),
		tree:     tree,
		delay:    delay,
		selector: selector,
		rng:      rng,
		states:   make(map[overlay.MemberID]*state),
	}
}

// gen returns the generation time of packet n.
func (m *Model) gen(n int64) time.Duration {
	return time.Duration(float64(n) / m.cfg.Rate * float64(time.Second))
}

// packetAfter returns the first sequence number generated at or after t.
func (m *Model) packetAfter(t time.Duration) int64 {
	n := int64(t.Seconds() * m.cfg.Rate)
	for m.gen(n) < t {
		n++
	}
	return n
}

// Register starts playback tracking for a member (call on join).
func (m *Model) Register(member *overlay.Member, now time.Duration) {
	if _, ok := m.states[member.ID]; ok {
		return
	}
	m.states[member.ID] = &state{
		viewStart: now,
		residual:  m.rng.Float64() * m.cfg.ResidualMax,
		watermark: -1,
	}
}

// Depart finalises a member's starving ratio (call when it leaves).
func (m *Model) Depart(id overlay.MemberID, now time.Duration) {
	st, ok := m.states[id]
	if !ok {
		return
	}
	delete(m.states, id)
	m.finalize(st, now)
}

// Finish finalises every still-present member at the end of a run, in ID
// order: the ratios it appends feed the reported mean and CDF, so map
// iteration order must not leak into results.
func (m *Model) Finish(now time.Duration) {
	ids := make([]overlay.MemberID, 0, len(m.states))
	for id := range m.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.finalize(m.states[id], now)
		delete(m.states, id)
	}
}

func (m *Model) finalize(st *state, now time.Duration) {
	view := now - st.viewStart
	if view < m.cfg.MinViewTime || now < m.cfg.MeasureFrom {
		return
	}
	starved := st.starved
	if starved > view {
		starved = view
	}
	m.ratios = append(m.ratios, float64(starved)/float64(view))
}

// OnFailure processes an abrupt departure: every child of the failed member
// becomes the root of a disrupted subtree, runs CER recovery, and the
// resulting per-packet outcomes are folded into every subtree member's
// playback accounting. Call before the failed member is removed from the
// tree.
func (m *Model) OnFailure(failed *overlay.Member, now time.Duration) {
	orphans := failed.Children()
	if len(orphans) == 0 {
		return
	}
	outageEnd := now + m.cfg.DetectDelay + m.cfg.RejoinDelay
	// Phase 1: mark every affected member's outage window first, so that
	// recovery-server health checks in phase 2 see members of concurrently
	// failed sibling subtrees as unavailable.
	for _, c := range orphans {
		m.tree.VisitSubtree(c, func(d *overlay.Member) {
			if st, ok := m.states[d.ID]; ok && st.viewStart <= now && st.outageUntil < outageEnd {
				st.outageUntil = outageEnd
			}
		})
	}
	// Phase 2: each orphan plans recovery and the plan applies to its whole
	// subtree (ELN suppresses duplicate recovery below the orphan).
	for _, c := range orphans {
		m.runEpisode(c, now, outageEnd)
	}
}

// runEpisode handles one orphan's outage.
func (m *Model) runEpisode(c *overlay.Member, failedAt, outageEnd time.Duration) {
	m.Episodes++
	m.met.episodes.Inc()
	repairedBefore, lostBefore := m.PacketsRepaired, m.PacketsLost
	first := m.packetAfter(failedAt)
	last := m.packetAfter(outageEnd) - 1
	if last < first {
		return
	}
	requestAt := failedAt + m.cfg.DetectDelay
	// The episode span covers the service-interruption window (the paper's
	// resilience metric); its children decompose it causally.
	var sp *tracing.SpanBuilder
	if m.cfg.Trace != nil {
		sp = m.cfg.Trace.Start(tracing.KindRepair, int64(c.ID), failedAt).
			AttrInt("first", first).AttrInt("last", last)
		sp.Child(tracing.KindDetect, int64(c.ID), failedAt).End(requestAt, "gap-detected")
	}
	plan, detail := m.planFor(c, first, last, requestAt, outageEnd)
	for _, fd := range detail {
		start := requestAt + fd.Server.ChainDelay
		if fd.Phase == "backlog" {
			start = outageEnd
		}
		sp.Child(tracing.KindFetch, int64(c.ID), start).
			AttrInt("server", int64(fd.Server.Member.ID)).
			AttrInt("packets", int64(fd.Packets)).
			End(fd.Last, fd.Phase)
	}
	var stallFirst, stallLast time.Duration
	stallSlots := 0
	// Fold into the subtree. ELN: c's loss notifications walk the subtree
	// edges so descendants wait for upstream repair instead of re-requesting.
	m.tree.VisitSubtree(c, func(d *overlay.Member) {
		if d != c {
			m.ELNMessages++
			m.met.eln.Inc()
		}
		st, ok := m.states[d.ID]
		if !ok || st.viewStart > failedAt {
			return
		}
		hop := time.Duration(0)
		if d != c {
			hop = m.delay(c.Attach, d.Attach)
		}
		from := first
		if st.watermark+1 > from {
			from = st.watermark + 1
		}
		for n := from; n <= last; n++ {
			deadline := m.gen(n) + m.cfg.Buffer
			arrival, repaired := plan[n]
			if !repaired || arrival+hop > deadline {
				st.starved += time.Duration(float64(time.Second) / m.cfg.Rate)
			}
			if d == c {
				if repaired && arrival <= deadline {
					m.PacketsRepaired++
				} else {
					m.PacketsLost++
					if sp != nil {
						if stallSlots == 0 {
							stallFirst = deadline
						}
						stallLast = deadline
						stallSlots++
					}
				}
			}
		}
		if last > st.watermark {
			st.watermark = last
		}
	})
	repaired := m.PacketsRepaired - repairedBefore
	lost := m.PacketsLost - lostBefore
	m.met.repaired.Add(float64(repaired))
	m.met.lost.Add(float64(lost))
	if sp != nil {
		if stallSlots > 0 {
			slot := time.Duration(float64(time.Second) / m.cfg.Rate)
			sp.Child(tracing.KindStall, int64(c.ID), stallFirst).
				AttrInt("slots", int64(stallSlots)).
				End(stallLast+slot, "starved")
		}
		outcome := "filled"
		switch {
		case lost > 0 && repaired > 0:
			outcome = "partial"
		case lost > 0:
			outcome = "abandoned"
		}
		sp.AttrInt("repaired", int64(repaired)).AttrInt("lost", int64(lost)).
			End(outageEnd, outcome)
	}
	if m.cfg.OnEpisode != nil {
		m.cfg.OnEpisode(c, failedAt, repaired, lost)
	}
}

// planFor selects the recovery group for orphan c and plans the repairs.
// The per-server detail is computed only when tracing is on.
func (m *Model) planFor(c *overlay.Member, first, last int64, requestAt, resumeAt time.Duration) (cer.Plan, []cer.ServerPlan) {
	group := m.selector.Select(c, m.cfg.GroupSize)
	m.RepairRequests++
	m.met.requests.Inc()
	servers := make([]cer.Server, 0, len(group))
	chain := time.Duration(0)
	prev := c
	for _, g := range group {
		// The NACK chain hops requester -> g1 -> g2 -> ...
		chain += m.delay(prev.Attach, g.Attach)
		prev = g
		st, ok := m.states[g.ID]
		if !ok || st.outageUntil > requestAt {
			continue // the server's own feed is down: it cannot help
		}
		servers = append(servers, cer.Server{
			Member:     g,
			Epsilon:    st.residual / m.cfg.Rate,
			ChainDelay: chain,
			Transfer:   m.delay(g.Attach, c.Attach),
		})
	}
	ep := cer.Episode{
		FirstMissing: first,
		LastMissing:  last,
		RequestAt:    requestAt,
		ResumeAt:     resumeAt,
		Rate:         m.cfg.Rate,
		Gen:          m.gen,
		Striped:      m.cfg.Striped,
	}
	if m.cfg.Trace == nil {
		return cer.PlanRecovery(ep, servers), nil
	}
	return cer.PlanRecoveryDetail(ep, servers)
}

// Result summarises playback quality.
type Result struct {
	// AvgStarvingRatio is the mean starving-time ratio over all finalised
	// members (the paper reports it in percent).
	AvgStarvingRatio float64
	// Ratios holds the per-member ratios.
	Ratios []float64
	// Members is the number of members contributing.
	Members int
}

// Result gathers the metrics accumulated so far.
func (m *Model) Result() Result {
	return Result{
		AvgStarvingRatio: stats.Mean(m.ratios),
		Ratios:           append([]float64(nil), m.ratios...),
		Members:          len(m.ratios),
	}
}
