// Package xrand supplies the random workload models used throughout the
// simulator: bounded Pareto member bandwidths, lognormal member lifetimes and
// exponential (Poisson-process) inter-arrival gaps, all drawn from
// deterministic named sub-streams of a single master seed so that every
// experiment is exactly replayable.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution samplers the paper's workload requires.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// NewNamed derives an independent sub-stream from a master seed and a stream
// name. Different names yield uncorrelated streams; the same (seed, name)
// pair always yields the same stream. This keeps, e.g., topology randomness
// independent of churn randomness so that changing one experiment knob does
// not perturb unrelated draws.
func NewNamed(seed int64, name string) *Source {
	h := fnv.New64a()
	// hash.Hash64 writes never fail; ignore the error per its contract.
	_, _ = h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw in [0,n). It panics if n <= 0, matching
// math/rand.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// UniformDuration returns a uniform draw in [lo, hi).
func (s *Source) UniformDuration(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)))
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// NormFloat64 returns a standard normal draw.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// BoundedPareto models member outbound bandwidths. The paper uses shape 1.2
// with bounds [0.5, 100] (in units of the stream rate), which makes 55.5 % of
// members free-riders (bandwidth < 1) and leaves a small population of
// super-nodes with out-degrees above 20.
type BoundedPareto struct {
	Shape float64 // alpha > 0
	Lo    float64 // L > 0
	Hi    float64 // H > L
}

// Sample draws one value by inverting the bounded Pareto CDF
// F(x) = (1-(L/x)^a) / (1-(L/H)^a).
func (p BoundedPareto) Sample(s *Source) float64 {
	u := s.Float64()
	la := math.Pow(p.Lo, p.Shape)
	ha := math.Pow(p.Hi, p.Shape)
	// Inverse transform: x = (-(u*H^a - u*L^a - H^a) / (H^a * L^a))^(-1/a).
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Shape)
	// Guard against floating-point excursions just outside the support.
	return math.Min(math.Max(x, p.Lo), p.Hi)
}

// CDF evaluates the bounded Pareto distribution function at x.
func (p BoundedPareto) CDF(x float64) float64 {
	switch {
	case x <= p.Lo:
		return 0
	case x >= p.Hi:
		return 1
	}
	num := 1 - math.Pow(p.Lo/x, p.Shape)
	den := 1 - math.Pow(p.Lo/p.Hi, p.Shape)
	return num / den
}

// Lognormal models member lifetimes. The paper sets location 5.5 and shape
// 2.0 (seconds), giving a mean lifetime of exp(5.5+2) ~ 1808 s with the heavy
// tail observed in live-streaming workload studies.
type Lognormal struct {
	Mu    float64 // location
	Sigma float64 // shape > 0
}

// Sample draws one value: exp(mu + sigma*Z).
func (l Lognormal) Sample(s *Source) float64 {
	return math.Exp(l.Mu + l.Sigma*s.NormFloat64())
}

// Mean returns the distribution mean exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// CDF evaluates the lognormal distribution function at x.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Exponential models inter-arrival gaps of the Poisson member-arrival
// process. Rate is in events per second.
type Exponential struct {
	Rate float64 // lambda > 0
}

// Sample draws one gap in seconds.
func (e Exponential) Sample(s *Source) float64 {
	return s.rng.ExpFloat64() / e.Rate
}

// SampleDuration draws one gap as a time.Duration.
func (e Exponential) SampleDuration(s *Source) time.Duration {
	return time.Duration(e.Sample(s) * float64(time.Second))
}
