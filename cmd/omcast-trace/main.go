// Command omcast-trace runs one simulated session and streams its overlay
// events (joins, rejoins, departures, failures, ROST switches — plus CER
// repair outcomes with -stream and periodic metric snapshots with -sample)
// as JSON lines — a machine-readable feed for offline analysis or
// visualisation. The stream is deterministic in -seed.
//
// Usage:
//
//	omcast-trace -alg rost -size 2000 > session.jsonl
//	omcast-trace -alg min-depth -size 500 -measure 30m | jq .event | sort | uniq -c
//	omcast-trace -size 500 -small -sample 5m | jq 'select(.event=="sample")'
//	omcast-trace -size 500 -small -stream -group 3 | jq 'select(.event=="repair")'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"omcast"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		algName = flag.String("alg", "rost", "algorithm: min-depth, longest-first, relaxed-bo, relaxed-to, rost")
		seed    = flag.Int64("seed", 1, "random seed")
		size    = flag.Int("size", 1000, "steady-state member count")
		warmup  = flag.Duration("warmup", 30*time.Minute, "warm-up horizon")
		measure = flag.Duration("measure", time.Hour, "measurement window")
		small   = flag.Bool("small", false, "use the reduced underlay")
		sample  = flag.Duration("sample", 0, "emit a metrics snapshot every interval of virtual time (0 = off)")
		stream  = flag.Bool("stream", false, "run the packet-level CER layer too (adds repair events)")
		group   = flag.Int("group", 3, "CER recovery group size (with -stream)")
	)
	flag.Parse()

	alg, ok := map[string]omcast.Algorithm{
		"min-depth":     omcast.MinimumDepth,
		"longest-first": omcast.LongestFirst,
		"relaxed-bo":    omcast.RelaxedBandwidthOrdered,
		"relaxed-to":    omcast.RelaxedTimeOrdered,
		"rost":          omcast.ROST,
	}[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "omcast-trace: unknown algorithm %q\n", *algName)
		return 2
	}
	cfg := omcast.Config{
		Seed:       *seed,
		Algorithm:  alg,
		TargetSize: *size,
		Warmup:     *warmup,
		Measure:    *measure,
	}
	if *small {
		cfg.Topology = omcast.SmallTopology()
	}
	out := bufio.NewWriter(os.Stdout)
	topts := omcast.TraceOptions{SampleEvery: *sample}
	var res omcast.TreeResult
	var err error
	if *stream {
		var sres omcast.StreamResult
		sres, err = omcast.RunStreamingWithTrace(cfg, omcast.StreamConfig{GroupSize: *group}, out, topts)
		res = sres.TreeResult
	} else {
		res, err = omcast.RunWithTraceOptions(cfg, out, topts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: %v\n", err)
		return 1
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "omcast-trace: flushing: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: %.2f disruptions/node, %.0fms delay, %d switches\n",
		res.Algorithm, res.AvgDisruptions, res.AvgServiceDelayMS, res.Switches)
	return 0
}
