package construct

import (
	"errors"
	"testing"
	"time"

	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

func testEnv(seed int64) *Env {
	return &Env{
		Rng: xrand.New(seed),
		Delay: func(a, b topology.NodeID) time.Duration {
			if a == b {
				return 0
			}
			// Deterministic pseudo-distance so "nearest" tie-breaks are
			// exercised: |a-b| ms.
			d := int64(a - b)
			if d < 0 {
				d = -d
			}
			return time.Duration(d) * time.Millisecond
		},
		CandidateCount: 100,
	}
}

func newTree(t *testing.T) *overlay.Tree {
	t.Helper()
	env := testEnv(0)
	tree, err := overlay.NewTree(0, 4, env.Delay) // small root degree forces depth
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tree
}

func join(t *testing.T, s Strategy, tree *overlay.Tree, attach topology.NodeID, bw float64, now time.Duration) *overlay.Member {
	t.Helper()
	m := tree.NewMember(attach, bw, now)
	if err := s.Join(tree, m, now); err != nil {
		t.Fatalf("%s.Join: %v", s.Name(), err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after join: %v", err)
	}
	return m
}

func TestNames(t *testing.T) {
	env := testEnv(1)
	cases := []struct {
		s    Strategy
		want string
	}{
		{&MinDepth{Env: env}, "Minimum-depth"},
		{&LongestFirst{Env: env}, "Longest-first"},
		{NewRelaxedBandwidthOrdered(env), "Relaxed bandwidth-ordered"},
		{NewRelaxedTimeOrdered(env), "Relaxed time-ordered"},
	}
	for _, c := range cases {
		if c.s.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.s.Name(), c.want)
		}
	}
}

func TestMinDepthFillsTopFirst(t *testing.T) {
	tree := newTree(t)
	s := &MinDepth{Env: testEnv(2)}
	// Root has degree 4; the first four members with any bandwidth land at
	// depth 1.
	for i := 0; i < 4; i++ {
		m := join(t, s, tree, topology.NodeID(i+1), 2, 0)
		if m.Depth() != 1 {
			t.Fatalf("member %d at depth %d, want 1", m.ID, m.Depth())
		}
	}
	// The next member must land at depth 2 under one of them.
	m := join(t, s, tree, 10, 2, 0)
	if m.Depth() != 2 {
		t.Fatalf("fifth member at depth %d, want 2", m.Depth())
	}
}

func TestMinDepthNearestTieBreak(t *testing.T) {
	tree := newTree(t)
	s := &MinDepth{Env: testEnv(3)}
	// Fill the root, then create two depth-1 parents with spare capacity at
	// underlay positions 1 and 100.
	p1 := join(t, s, tree, 1, 2, 0)
	p2 := join(t, s, tree, 100, 2, 0)
	join(t, s, tree, 50, 0.5, 0)
	join(t, s, tree, 51, 0.5, 0)
	// New member at underlay 99: both p1 and p2 are depth 1 with spare; it
	// must pick p2 (delay 1 ms) over p1 (delay 98 ms).
	m := join(t, s, tree, 99, 0.5, 0)
	if m.Parent() != p2 {
		t.Fatalf("tie-break picked parent at %d, want nearest %d", m.Parent().Attach, p2.Attach)
	}
	_ = p1
}

func TestMinDepthSaturation(t *testing.T) {
	env := testEnv(4)
	tree, err := overlay.NewTree(0, 1, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := &MinDepth{Env: env}
	join(t, s, tree, 1, 0.5, 0) // free-rider fills the only slot
	m := tree.NewMember(2, 0.5, 0)
	if err := s.Join(tree, m, 0); !errors.Is(err, ErrNoParent) {
		t.Fatalf("saturated join = %v, want ErrNoParent", err)
	}
}

func TestLongestFirstPicksOldest(t *testing.T) {
	tree := newTree(t)
	s := &LongestFirst{Env: testEnv(5)}
	// The root (join time 0) is the oldest node, so the first four joiners
	// fill its four slots.
	old := join(t, s, tree, 1, 3, 5*time.Second)
	join(t, s, tree, 2, 3, 10*time.Second)
	join(t, s, tree, 3, 3, 20*time.Second)
	join(t, s, tree, 4, 3, 30*time.Second)
	// With the root full, the next member must go under the oldest remaining
	// node with spare capacity.
	m := join(t, s, tree, 5, 0.5, 40*time.Second)
	if m.Parent() != old {
		t.Fatalf("joined under member with join time %v, want oldest (%v)",
			m.Parent().JoinTime, old.JoinTime)
	}
}

func TestRelaxedBOEvictsWeaker(t *testing.T) {
	env := testEnv(6)
	tree, err := overlay.NewTree(0, 2, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRelaxedBandwidthOrdered(env)
	weak := join(t, s, tree, 1, 1, 0)
	join(t, s, tree, 2, 5, 0)
	kid := join(t, s, tree, 3, 0.5, 0) // lands under one of the depth-1 nodes
	// A strong newcomer must displace the weak depth-1 node.
	strong := join(t, s, tree, 4, 8, time.Second)
	if strong.Depth() != 1 {
		t.Fatalf("strong joiner at depth %d, want 1", strong.Depth())
	}
	if weak.Depth() <= 1 || !weak.Attached() {
		t.Fatalf("weak node depth %d attached=%v, want evicted below layer 1", weak.Depth(), weak.Attached())
	}
	// Eviction-first semantics can cascade (the rejoining weak node may in
	// turn displace the even weaker kid), but every hop must be charged.
	if weak.Reconnections < 1 {
		t.Fatalf("evicted node reconnections = %d, want >= 1", weak.Reconnections)
	}
	if !kid.Attached() {
		t.Fatal("cascade left the weakest node detached")
	}
}

func TestRelaxedBOAdoptsChildren(t *testing.T) {
	env := testEnv(7)
	tree, err := overlay.NewTree(0, 1, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRelaxedBandwidthOrdered(env)
	victim := join(t, s, tree, 1, 2, 0)
	c1 := join(t, s, tree, 2, 0.5, 0)
	c2 := join(t, s, tree, 3, 0.5, 0)
	if c1.Parent() != victim || c2.Parent() != victim {
		t.Fatal("setup: children not under victim")
	}
	strong := join(t, s, tree, 4, 6, time.Second)
	// Bandwidth ordering: the replacement adopts both children, so they keep
	// their layer (the rejoining victim may then displace one of them — a
	// cascade of the eviction-first rule — but everyone ends under strong).
	if c1.Parent() != strong || c2.Parent() != strong {
		t.Fatalf("children parents = %d,%d, want replacement %d",
			c1.Parent().ID, c2.Parent().ID, strong.ID)
	}
	if victim.Parent() != strong {
		t.Fatalf("victim rejoined under %d, want %d", victim.Parent().ID, strong.ID)
	}
	if victim.Reconnections < 1 {
		t.Fatal("victim not charged for its eviction")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRelaxedBOOrderingInvariant drives random joins and checks that every
// child has bandwidth <= its parent (the property the relaxed BO tree
// maintains), except children of the root which joined when slots were free.
func TestRelaxedBOOrderingInvariant(t *testing.T) {
	env := testEnv(8)
	tree, err := overlay.NewTree(0, 100, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRelaxedBandwidthOrdered(env)
	for i := 0; i < 300; i++ {
		bw := 0.5 + env.Rng.Float64()*10
		m := tree.NewMember(topology.NodeID(i), bw, time.Duration(i)*time.Second)
		if err := s.Join(tree, m, time.Duration(i)*time.Second); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tree.VisitSubtree(tree.Root(), func(m *overlay.Member) {
		p := m.Parent()
		if p == nil || p == tree.Root() {
			return
		}
		if m.Bandwidth > p.Bandwidth {
			t.Fatalf("bandwidth ordering violated: child %g over parent %g",
				m.Bandwidth, p.Bandwidth)
		}
	})
}

func TestRelaxedTOEvictsYounger(t *testing.T) {
	env := testEnv(9)
	tree, err := overlay.NewTree(0, 1, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRelaxedTimeOrdered(env)
	young := tree.NewMember(1, 3, 100*time.Second)
	if err := s.Join(tree, young, 100*time.Second); err != nil {
		t.Fatal(err)
	}
	// An older member (smaller join time) arriving later evicts the young
	// depth-1 occupant.
	older := tree.NewMember(2, 3, 50*time.Second)
	if err := s.Join(tree, older, 150*time.Second); err != nil {
		t.Fatal(err)
	}
	if older.Depth() != 1 {
		t.Fatalf("older member depth = %d, want 1", older.Depth())
	}
	if young.Parent() != older {
		t.Fatalf("young member rejoined under %d, want %d", young.Parent().ID, older.ID)
	}
}

// TestRelaxedTOLeftoverChildrenRejoin covers the case the paper calls out:
// under time ordering the replacement may have less capacity than the victim,
// so some of the victim's children are forced to rejoin too.
func TestRelaxedTOLeftoverChildrenRejoin(t *testing.T) {
	env := testEnv(10)
	tree, err := overlay.NewTree(0, 1, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRelaxedTimeOrdered(env)
	victim := tree.NewMember(1, 3, 100*time.Second) // degree 3
	if err := s.Join(tree, victim, 100*time.Second); err != nil {
		t.Fatal(err)
	}
	var kids []*overlay.Member
	for i := 0; i < 3; i++ {
		k := tree.NewMember(topology.NodeID(10+i), 2, time.Duration(200+i)*time.Second)
		if err := s.Join(tree, k, k.JoinTime); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, k)
	}
	// Older newcomer with degree 1 replaces the victim: it can adopt only one
	// child; the other two and the victim must rejoin.
	older := tree.NewMember(5, 1.5, 10*time.Second)
	if err := s.Join(tree, older, 300*time.Second); err != nil {
		t.Fatal(err)
	}
	if older.Depth() != 1 {
		t.Fatalf("older newcomer depth = %d, want 1", older.Depth())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everyone still attached.
	reconns := victim.Reconnections
	for _, k := range kids {
		if !k.Attached() {
			t.Fatalf("child %d left detached", k.ID)
		}
		reconns += k.Reconnections
	}
	if reconns < 3 { // victim + 2 leftover children
		t.Fatalf("total reconnections = %d, want >= 3", reconns)
	}
}

// TestRelaxedTOOrderingInvariant: every child is not older than its parent.
func TestRelaxedTOOrderingInvariant(t *testing.T) {
	env := testEnv(11)
	tree, err := overlay.NewTree(0, 100, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRelaxedTimeOrdered(env)
	// Joins arrive in time order but with random bandwidth; eviction only
	// happens on rejoins after departures, so simulate a little churn.
	var live []*overlay.Member
	now := time.Duration(0)
	for i := 0; i < 400; i++ {
		now += time.Second
		if i%5 == 4 && len(live) > 3 {
			// Remove a random member; rejoin its orphans (they keep their
			// original join times, which exercises eviction).
			idx := env.Rng.Intn(len(live))
			m := live[idx]
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
			orphans, err := tree.Remove(m)
			if err != nil {
				t.Fatalf("remove: %v", err)
			}
			for _, o := range orphans {
				if err := s.Join(tree, o, now); err != nil {
					t.Fatalf("orphan rejoin: %v", err)
				}
			}
			continue
		}
		bw := 0.5 + env.Rng.Float64()*6
		m := tree.NewMember(topology.NodeID(i), bw, now)
		if err := s.Join(tree, m, now); err != nil {
			t.Fatalf("join: %v", err)
		}
		live = append(live, m)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tree.VisitSubtree(tree.Root(), func(m *overlay.Member) {
		p := m.Parent()
		if p == nil || p == tree.Root() {
			return
		}
		if m.JoinTime < p.JoinTime {
			t.Fatalf("time ordering violated: child joined %v, parent %v",
				m.JoinTime, p.JoinTime)
		}
	})
}

// TestDepthComparison reproduces the qualitative claim of Section 3.1: with
// the same member population, the longest-first tree is much taller than the
// minimum-depth tree, and the relaxed BO tree is the shortest.
func TestDepthComparison(t *testing.T) {
	type result struct {
		name  string
		depth int
	}
	var results []result
	build := func(mk func(env *Env) Strategy) int {
		env := testEnv(12)
		tree, err := overlay.NewTree(0, 100, env.Delay)
		if err != nil {
			t.Fatal(err)
		}
		s := mk(env)
		bwDist := xrand.BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 100}
		bwRng := xrand.New(99) // same bandwidth sequence for every algorithm
		for i := 0; i < 800; i++ {
			bw := bwDist.Sample(bwRng)
			m := tree.NewMember(topology.NodeID(i), bw, time.Duration(i)*time.Second)
			if err := s.Join(tree, m, time.Duration(i)*time.Second); err != nil {
				t.Fatalf("%s join %d: %v", s.Name(), i, err)
			}
		}
		results = append(results, result{s.Name(), tree.MaxDepth()})
		return tree.MaxDepth()
	}
	minDepth := build(func(env *Env) Strategy { return &MinDepth{Env: env} })
	longest := build(func(env *Env) Strategy { return &LongestFirst{Env: env} })
	bo := build(func(env *Env) Strategy { return NewRelaxedBandwidthOrdered(env) })
	// In a join-only trace the tall-tree pathology of longest-first only
	// partially shows (it fully emerges under churn, which the experiment
	// harness exercises); here we check the weak ordering that must always
	// hold: BO is the shortest and longest-first is no shorter than it.
	if longest < minDepth {
		t.Errorf("longest-first depth %d should be >= minimum-depth %d (results: %v)",
			longest, minDepth, results)
	}
	if bo > minDepth {
		t.Errorf("relaxed BO depth %d should not exceed minimum-depth %d (results: %v)",
			bo, minDepth, results)
	}
}

func TestContributorPriorityName(t *testing.T) {
	env := testEnv(20)
	s := &ContributorPriority{Env: env, Inner: &MinDepth{Env: env}}
	if got := s.Name(); got != "Minimum-depth (contributor priority)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestContributorPriorityParksFreeRidersDeep(t *testing.T) {
	env := testEnv(21)
	tree, err := overlay.NewTree(0, 2, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := &ContributorPriority{Env: env, Inner: &MinDepth{Env: env}}
	// Build a 3-level spine of contributors with spare capacity everywhere.
	a := join(t, s, tree, 1, 3, 0)
	b := join(t, s, tree, 2, 3, 0)
	c := join(t, s, tree, 3, 3, 0)
	if a.Depth() != 1 || b.Depth() != 1 {
		t.Fatalf("contributors at depths %d/%d, want 1 (min-depth path)", a.Depth(), b.Depth())
	}
	if c.Depth() != 2 {
		t.Fatalf("third contributor at depth %d, want 2", c.Depth())
	}
	// A free-rider must land at the DEEPEST spare position (under c).
	fr := join(t, s, tree, 4, 0.5, 0)
	if fr.Parent() != c {
		t.Fatalf("free-rider under depth-%d parent %d, want deepest (%d)",
			fr.Parent().Depth(), fr.Parent().ID, c.ID)
	}
}

func TestContributorPrioritySaturation(t *testing.T) {
	env := testEnv(22)
	tree, err := overlay.NewTree(0, 1, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := &ContributorPriority{Env: env, Inner: &MinDepth{Env: env}}
	join(t, s, tree, 1, 0.5, 0) // free-rider takes the only slot
	m := tree.NewMember(2, 0.5, 0)
	if err := s.Join(tree, m, 0); !errors.Is(err, ErrNoParent) {
		t.Fatalf("saturated free-rider join = %v, want ErrNoParent", err)
	}
}

// TestRelaxedOrderedSaturation: the eviction path also reports saturation
// when nobody is outranked and nothing is spare.
func TestRelaxedOrderedSaturation(t *testing.T) {
	env := testEnv(23)
	tree, err := overlay.NewTree(0, 1, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRelaxedBandwidthOrdered(env)
	strong := tree.NewMember(1, 50, 0)
	if err := s.Join(tree, strong, 0); err != nil {
		t.Fatal(err)
	}
	// Fill the strong node completely with equal-bandwidth members (nobody
	// outranks anybody).
	for i := 0; i < 50; i++ {
		m := tree.NewMember(topology.NodeID(10+i), 50, 0)
		if err := s.Join(tree, m, 0); err != nil {
			t.Fatalf("fill join %d: %v", i, err)
		}
	}
	// hm: equal bandwidths never outrank, so all spare capacity is consumed
	// only when every slot of every degree-50 member is full, which would
	// take thousands of joins; instead check a weaker member cannot evict.
	weak := tree.NewMember(99, 0.5, 0)
	err = s.Join(tree, weak, 0)
	if err != nil && !errors.Is(err, ErrNoParent) {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

func TestMinDepthExcludesDetachedCandidates(t *testing.T) {
	env := testEnv(24)
	tree, err := overlay.NewTree(0, 2, env.Delay)
	if err != nil {
		t.Fatal(err)
	}
	s := &MinDepth{Env: env}
	a := join(t, s, tree, 1, 5, 0)
	if err := tree.Detach(a); err != nil {
		t.Fatal(err)
	}
	// a has plenty of spare degree but is detached; the joiner must not
	// choose it.
	m := join(t, s, tree, 2, 0.5, 0)
	if m.Parent() == a {
		t.Fatal("joined under a detached parent")
	}
}
