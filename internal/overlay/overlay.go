// Package overlay implements the single-tree overlay multicast substrate the
// paper's algorithms operate on: members with out-degree constraints derived
// from their outbound bandwidths, parent/child links, per-layer indexing (the
// centralized relaxed-BO/TO algorithms scan layers top-down), overlay path
// delays, and the disruption/reconnection accounting the evaluation reports.
//
// The package is purely structural: which parent a member picks, when nodes
// switch positions, and how losses are repaired live in the construct, rost
// and cer packages.
package overlay

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// MemberID identifies an overlay member for the lifetime of a simulation.
// IDs are never reused. The zero value is not a valid ID.
type MemberID int64

// Common structural errors.
var (
	ErrFull        = errors.New("overlay: parent has no spare out-degree")
	ErrNotMember   = errors.New("overlay: not a current member")
	ErrCycle       = errors.New("overlay: attach would create a cycle")
	ErrHasParent   = errors.New("overlay: member already has a parent")
	ErrRootLeave   = errors.New("overlay: the source cannot leave")
	ErrSelfAttach  = errors.New("overlay: cannot attach a member to itself")
	ErrNotAttached = errors.New("overlay: member is not attached to the tree")
)

// Member is one overlay node. Fields other than the exported identity and
// statistics fields are maintained by Tree and must not be mutated directly.
type Member struct {
	ID MemberID
	// Attach is the stub router the member sits on.
	Attach topology.NodeID
	// Bandwidth is the outbound access bandwidth in units of the stream
	// rate. The member can feed floor(Bandwidth) children.
	Bandwidth float64
	// JoinTime is the virtual time the member entered the overlay.
	JoinTime time.Duration

	// Disruptions counts streaming disruptions experienced (one per failed
	// ancestor, per the paper's reliability metric).
	Disruptions int
	// Reconnections counts optimizer-induced parent changes (switch
	// operations and evictions); failure rejoins are not counted, matching
	// the paper's protocol-overhead metric.
	Reconnections int

	parent    *Member
	children  []*Member
	depth     int
	pathDelay time.Duration
	attached  bool

	// lockOwner is the ID of the in-flight switching operation holding this
	// member, or zero when unlocked (ROST locking protocol).
	lockOwner int64

	// orderIdx / levelIdx index the member inside Tree.order and
	// Tree.levels[depth] for O(1) removal.
	orderIdx int
	levelIdx int
}

// Parent returns the current parent, or nil for the root (and for detached
// members).
func (m *Member) Parent() *Member { return m.parent }

// Children returns the member's children. The returned slice is owned by the
// tree; callers must not mutate it.
func (m *Member) Children() []*Member { return m.children }

// Depth returns the member's layer (root = 0).
func (m *Member) Depth() int { return m.depth }

// PathDelay returns the accumulated delay of the overlay path from the source.
func (m *Member) PathDelay() time.Duration { return m.pathDelay }

// Attached reports whether the member currently has a position in the tree
// (the root is always attached).
func (m *Member) Attached() bool { return m.attached }

// OutDegree returns the member's out-degree constraint: the number of
// full-rate children its outbound bandwidth supports.
func (m *Member) OutDegree() int {
	if m.Bandwidth < 0 {
		return 0
	}
	return int(m.Bandwidth)
}

// SpareDegree returns how many more children the member can accept.
func (m *Member) SpareDegree() int { return m.OutDegree() - len(m.children) }

// HasSpare reports whether the member can accept one more child.
func (m *Member) HasSpare() bool { return m.SpareDegree() > 0 }

// Age returns the member's age at virtual time now.
func (m *Member) Age(now time.Duration) time.Duration {
	if now < m.JoinTime {
		return 0
	}
	return now - m.JoinTime
}

// BTP returns the member's bandwidth-time product at virtual time now:
// outbound bandwidth x age in seconds (the ROST switching metric).
func (m *Member) BTP(now time.Duration) float64 {
	return m.Bandwidth * m.Age(now).Seconds()
}

// Locked reports whether the member is held by a switching operation.
func (m *Member) Locked() bool { return m.lockOwner != 0 }

// Tree is the overlay multicast tree. It is single-threaded by design (the
// simulation kernel is sequential); no internal locking.
type Tree struct {
	root    *Member
	members map[MemberID]*Member
	// order lists attached and detached live members for O(1) sampling.
	order []*Member
	// levels[d] lists attached members at depth d.
	levels [][]*Member
	nextID MemberID
	// delayFn gives the unicast delay between two underlay routers.
	delayFn func(a, b topology.NodeID) time.Duration
	// sampleSeen/sampleEpoch replace Sample's per-call dedup map: an index
	// is "drawn this call" iff sampleSeen[i] == sampleEpoch. Bumping the
	// epoch clears every stamp at once, so the buffer is reused across
	// calls without touching its contents.
	sampleSeen  []uint32
	sampleEpoch uint32
}

// NewTree creates a tree rooted at a source member placed on rootAttach with
// the given outbound bandwidth (the paper uses 100, i.e. 100 full-rate
// children). delayFn supplies underlay delays; it must be non-nil.
func NewTree(rootAttach topology.NodeID, rootBandwidth float64, delayFn func(a, b topology.NodeID) time.Duration) (*Tree, error) {
	if delayFn == nil {
		return nil, errors.New("overlay: nil delay function")
	}
	if rootBandwidth < 1 {
		return nil, fmt.Errorf("overlay: root bandwidth %g cannot feed any child", rootBandwidth)
	}
	t := &Tree{
		members: make(map[MemberID]*Member),
		delayFn: delayFn,
		nextID:  1,
	}
	root := &Member{
		ID:        t.nextID,
		Attach:    rootAttach,
		Bandwidth: rootBandwidth,
		attached:  true,
		orderIdx:  -1, // the root is not sampleable as a rejoin candidate owner
		levelIdx:  0,
	}
	t.nextID++
	t.root = root
	t.members[root.ID] = root
	t.levels = append(t.levels, []*Member{root})
	return t, nil
}

// Root returns the source member.
func (t *Tree) Root() *Member { return t.root }

// Size returns the number of live members including the source.
func (t *Tree) Size() int { return len(t.members) }

// Member returns the live member with the given ID, or nil.
func (t *Tree) Member(id MemberID) *Member { return t.members[id] }

// NewMember registers a live member without attaching it to the tree. The
// caller attaches it with Attach once a parent is chosen.
func (t *Tree) NewMember(attach topology.NodeID, bandwidth float64, now time.Duration) *Member {
	m := &Member{
		ID:        t.nextID,
		Attach:    attach,
		Bandwidth: bandwidth,
		JoinTime:  now,
		orderIdx:  len(t.order),
		levelIdx:  -1,
		depth:     -1,
	}
	t.nextID++
	t.members[m.ID] = m
	t.order = append(t.order, m)
	return m
}

// Attach links child under parent. The child must be live, detached and
// parentless; the parent must be live, attached and have spare degree.
func (t *Tree) Attach(child, parent *Member) error {
	switch {
	case child == nil || parent == nil:
		return ErrNotMember
	case t.members[child.ID] != child || t.members[parent.ID] != parent:
		return ErrNotMember
	case child == parent:
		return ErrSelfAttach
	case child.parent != nil || child.attached:
		return ErrHasParent
	case !parent.attached:
		return ErrNotAttached
	case !parent.HasSpare():
		return ErrFull
	}
	child.parent = parent
	parent.children = append(parent.children, child)
	child.attached = true
	t.placeSubtree(child)
	return nil
}

// placeSubtree recomputes depth, path delay and level indexing for m and all
// its descendants (children of a rejoining member keep their subtrees, so a
// re-attach moves whole subtrees).
func (t *Tree) placeSubtree(m *Member) {
	var place func(n *Member)
	place = func(n *Member) {
		n.depth = n.parent.depth + 1
		n.pathDelay = n.parent.pathDelay + t.delayFn(n.parent.Attach, n.Attach)
		n.attached = true
		t.levelInsert(n)
		for _, c := range n.children {
			place(c)
		}
	}
	place(m)
}

// Detach unlinks m from its parent, leaving m's own subtree intact but
// marking every node in it unattached (no live path from the source).
func (t *Tree) Detach(m *Member) error {
	if m == nil || t.members[m.ID] != m {
		return ErrNotMember
	}
	if m == t.root {
		return ErrRootLeave
	}
	if m.parent == nil {
		return ErrNotAttached
	}
	removeChild(m.parent, m)
	m.parent = nil
	var unplace func(n *Member)
	unplace = func(n *Member) {
		if n.attached {
			t.levelRemove(n)
			n.attached = false
			n.depth = -1
		}
		for _, c := range n.children {
			unplace(c)
		}
	}
	unplace(m)
	return nil
}

// Remove deletes a member from the overlay entirely (departure or failure)
// and returns its now-orphaned children, each of which keeps its own subtree
// and must rejoin. The children are returned detached.
func (t *Tree) Remove(m *Member) ([]*Member, error) {
	if m == nil || t.members[m.ID] != m {
		return nil, ErrNotMember
	}
	if m == t.root {
		return nil, ErrRootLeave
	}
	orphans := append([]*Member(nil), m.children...)
	for _, c := range orphans {
		if err := t.Detach(c); err != nil {
			return nil, fmt.Errorf("overlay: detaching orphan %d: %w", c.ID, err)
		}
	}
	if m.parent != nil {
		if err := t.Detach(m); err != nil {
			return nil, fmt.Errorf("overlay: detaching leaver %d: %w", m.ID, err)
		}
	}
	delete(t.members, m.ID)
	t.orderRemove(m)
	return orphans, nil
}

// MoveSubtree re-parents m (and its whole subtree) under newParent. Used by
// switching and eviction operations. m must currently be attached.
func (t *Tree) MoveSubtree(m, newParent *Member) error {
	if m == nil || newParent == nil || t.members[m.ID] != m || t.members[newParent.ID] != newParent {
		return ErrNotMember
	}
	if m == t.root {
		return ErrRootLeave
	}
	if m == newParent {
		return ErrSelfAttach
	}
	if !newParent.attached {
		return ErrNotAttached
	}
	// Reject moves under m's own subtree, which would detach the subtree
	// from the source.
	for p := newParent; p != nil; p = p.parent {
		if p == m {
			return ErrCycle
		}
	}
	if !newParent.HasSpare() {
		return ErrFull
	}
	if m.parent != nil {
		removeChild(m.parent, m)
		m.parent = nil
		// Temporarily unplace so Attach's invariants hold.
		var unplace func(n *Member)
		unplace = func(n *Member) {
			if n.attached {
				t.levelRemove(n)
				n.attached = false
			}
			for _, c := range n.children {
				unplace(c)
			}
		}
		unplace(m)
	}
	return t.Attach(m, newParent)
}

// VisitMembers calls fn for every live member, attached or not, in
// unspecified order (the source included).
func (t *Tree) VisitMembers(fn func(*Member)) {
	fn(t.root)
	for _, m := range t.order {
		fn(m)
	}
}

// VisitSubtree calls fn for every attached member in m's subtree including m
// itself, in pre-order.
func (t *Tree) VisitSubtree(m *Member, fn func(*Member)) {
	if m == nil {
		return
	}
	fn(m)
	for _, c := range m.children {
		t.VisitSubtree(c, fn)
	}
}

// SubtreeSize returns the number of members in m's subtree including m.
func (t *Tree) SubtreeSize(m *Member) int {
	n := 0
	t.VisitSubtree(m, func(*Member) { n++ })
	return n
}

// Ancestors returns the path from m's parent up to the root, nearest first.
func (t *Tree) Ancestors(m *Member) []*Member {
	var out []*Member
	for p := m.parent; p != nil; p = p.parent {
		out = append(out, p)
	}
	return out
}

// MaxDepth returns the current tree height (deepest attached layer).
func (t *Tree) MaxDepth() int {
	for d := len(t.levels) - 1; d >= 0; d-- {
		if len(t.levels[d]) > 0 {
			return d
		}
	}
	return 0
}

// Level returns the attached members at depth d. The returned slice is owned
// by the tree; callers must not mutate it.
func (t *Tree) Level(d int) []*Member {
	if d < 0 || d >= len(t.levels) {
		return nil
	}
	return t.levels[d]
}

// Sample returns up to n distinct live members drawn uniformly at random,
// excluding the root and the given member. This models a joining node's
// bounded membership discovery ("until it obtains a certain number, say 100,
// of known members").
func (t *Tree) Sample(rng *xrand.Source, n int, exclude *Member) []*Member {
	if n <= 0 || len(t.order) == 0 {
		return nil
	}
	if n >= len(t.order) {
		out := make([]*Member, 0, len(t.order))
		for _, m := range t.order {
			if m != exclude {
				out = append(out, m)
			}
		}
		return out
	}
	// Partial Fisher-Yates over a scratch index space would disturb t.order;
	// instead draw with rejection, which is cheap because n << len(order) in
	// the overlay regime (100 out of thousands). Duplicates are detected
	// with the tree's epoch-stamped scratch buffer: same accept/reject
	// sequence as a dedup map (so the RNG stream is untouched) without the
	// per-call map allocations.
	if len(t.sampleSeen) < len(t.order) {
		t.sampleSeen = make([]uint32, len(t.order))
		t.sampleEpoch = 0
	}
	t.sampleEpoch++
	if t.sampleEpoch == 0 { // epoch wrapped: stale stamps could collide
		clear(t.sampleSeen)
		t.sampleEpoch = 1
	}
	out := make([]*Member, 0, n)
	attempts := 0
	maxAttempts := 20 * n
	for len(out) < n && attempts < maxAttempts {
		attempts++
		i := rng.Intn(len(t.order))
		if t.sampleSeen[i] == t.sampleEpoch {
			continue
		}
		t.sampleSeen[i] = t.sampleEpoch
		if t.order[i] == exclude {
			continue
		}
		out = append(out, t.order[i])
	}
	return out
}

// RecordFailure increments the disruption counter of every attached member
// in the subtrees below the failed member (the member itself is excluded: it
// departed). It returns how many members were disrupted. Per the paper's
// metric, an abrupt departure disrupts each descendant once.
func (t *Tree) RecordFailure(failed *Member) int {
	n := 0
	for _, c := range failed.children {
		t.VisitSubtree(c, func(d *Member) {
			d.Disruptions++
			n++
		})
	}
	return n
}

// Lock attempts to acquire the ROST switching lock on all given members on
// behalf of operation op (non-zero). It either locks all of them and returns
// true, or locks none and returns false (a member already held by a
// different operation blocks the whole set).
func (t *Tree) Lock(op int64, members ...*Member) bool {
	if op == 0 {
		return false
	}
	for _, m := range members {
		if m.lockOwner != 0 && m.lockOwner != op {
			return false
		}
	}
	for _, m := range members {
		m.lockOwner = op
	}
	return true
}

// Unlock releases the lock on all members held by operation op.
func (t *Tree) Unlock(op int64, members ...*Member) {
	for _, m := range members {
		if m.lockOwner == op {
			m.lockOwner = 0
		}
	}
}

// CheckInvariants verifies structural invariants and returns the first
// violation found, or nil. It is O(n) and intended for tests and debugging.
func (t *Tree) CheckInvariants() error {
	seen := make(map[MemberID]bool, len(t.members))
	var walk func(m *Member) error
	walk = func(m *Member) error {
		if seen[m.ID] {
			return fmt.Errorf("overlay: member %d reachable twice", m.ID)
		}
		seen[m.ID] = true
		if len(m.children) > m.OutDegree() {
			return fmt.Errorf("overlay: member %d has %d children, degree %d", m.ID, len(m.children), m.OutDegree())
		}
		for _, c := range m.children {
			if c.parent != m {
				return fmt.Errorf("overlay: member %d's child %d has wrong parent", m.ID, c.ID)
			}
			if c.attached {
				if c.depth != m.depth+1 {
					return fmt.Errorf("overlay: member %d depth %d, parent depth %d", c.ID, c.depth, m.depth)
				}
				want := m.pathDelay + t.delayFn(m.Attach, c.Attach)
				if c.pathDelay != want {
					return fmt.Errorf("overlay: member %d pathDelay %v, want %v", c.ID, c.pathDelay, want)
				}
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	// Every attached member must be reachable from the root. Check in ID
	// order so the violation reported first is the same on every run.
	ids := make([]MemberID, 0, len(t.members))
	for id := range t.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if m := t.members[id]; m.attached && !seen[id] {
			return fmt.Errorf("overlay: attached member %d unreachable from source", id)
		}
	}
	// Level index must agree with member depths.
	counted := 0
	for d, level := range t.levels {
		for i, m := range level {
			if m.depth != d || m.levelIdx != i || !m.attached {
				return fmt.Errorf("overlay: level index corrupt at depth %d slot %d (member %d)", d, i, m.ID)
			}
			counted++
		}
	}
	attachedCount := 0
	for _, m := range t.members {
		if m.attached {
			attachedCount++
		}
	}
	if counted != attachedCount {
		return fmt.Errorf("overlay: level index holds %d members, %d attached", counted, attachedCount)
	}
	return nil
}

func removeChild(parent, child *Member) {
	for i, c := range parent.children {
		if c == child {
			last := len(parent.children) - 1
			parent.children[i] = parent.children[last]
			parent.children[last] = nil
			parent.children = parent.children[:last]
			return
		}
	}
}

func (t *Tree) levelInsert(m *Member) {
	for len(t.levels) <= m.depth {
		t.levels = append(t.levels, nil)
	}
	m.levelIdx = len(t.levels[m.depth])
	t.levels[m.depth] = append(t.levels[m.depth], m)
}

func (t *Tree) levelRemove(m *Member) {
	level := t.levels[m.depth]
	last := len(level) - 1
	level[m.levelIdx] = level[last]
	level[m.levelIdx].levelIdx = m.levelIdx
	level[last] = nil
	t.levels[m.depth] = level[:last]
	m.levelIdx = -1
}

func (t *Tree) orderRemove(m *Member) {
	if m.orderIdx < 0 {
		return
	}
	last := len(t.order) - 1
	t.order[m.orderIdx] = t.order[last]
	t.order[m.orderIdx].orderIdx = m.orderIdx
	t.order[last] = nil
	t.order = t.order[:last]
	m.orderIdx = -1
}
