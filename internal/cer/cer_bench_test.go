package cer

import (
	"testing"
	"time"

	"omcast/internal/overlay"
	"omcast/internal/topology"
	"omcast/internal/xrand"
)

// benchTree builds a 2000-member tree with mixed fanout.
func benchTree(b *testing.B) (*overlay.Tree, *overlay.Member) {
	b.Helper()
	tree, err := overlay.NewTree(0, 100, delayFn)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	bw := xrand.BoundedPareto{Shape: 1.2, Lo: 0.5, Hi: 100}
	var last *overlay.Member
	for i := 0; i < 2000; i++ {
		m := tree.NewMember(topology.NodeID(i+1), bw.Sample(rng), time.Duration(i)*time.Second)
		// Attach under any sampled member with spare, else the root.
		parent := tree.Root()
		for _, c := range tree.Sample(rng, 30, m) {
			if c.Attached() && c.HasSpare() {
				parent = c
				break
			}
		}
		if !parent.HasSpare() {
			continue
		}
		if err := tree.Attach(m, parent); err != nil {
			b.Fatal(err)
		}
		last = m
	}
	return tree, last
}

// BenchmarkMLCSelect measures Algorithm 1 (partial-tree build + level scan +
// descendant picks) at the default knowledge bound.
func BenchmarkMLCSelect(b *testing.B) {
	tree, self := benchTree(b)
	sel := &MLCSelector{Tree: tree, Rng: xrand.New(2), Delay: delayFn}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := sel.Select(self, 3); len(g) == 0 {
			b.Fatal("empty group")
		}
	}
}

// BenchmarkRandomSelect is the non-MLC baseline selection.
func BenchmarkRandomSelect(b *testing.B) {
	tree, self := benchTree(b)
	sel := &RandomSelector{Tree: tree, Rng: xrand.New(2), Delay: delayFn}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := sel.Select(self, 3); len(g) == 0 {
			b.Fatal("empty group")
		}
	}
}

// BenchmarkPlanRecovery measures planning one 150-packet episode.
func BenchmarkPlanRecovery(b *testing.B) {
	ep := testEpisode(true)
	servers := []Server{
		mkServer(0.3, 10*time.Millisecond, 10*time.Millisecond),
		mkServer(0.4, 20*time.Millisecond, 15*time.Millisecond),
		mkServer(0.2, 30*time.Millisecond, 20*time.Millisecond),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan := PlanRecovery(ep, servers); len(plan) == 0 {
			b.Fatal("empty plan")
		}
	}
}
