package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func quickRunner() *Runner {
	return NewRunner(Options{Seed: 1, Quick: true})
}

// parseCell strips units ("%", "ms", "s", "x") and parses the number.
func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	for _, suffix := range []string{"%", "ms", "s", "x"} {
		cell = strings.TrimSuffix(cell, suffix)
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", cell, err)
	}
	return v
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("IDs() has %d entries, want 18 (11 figures + 4 ablations + 2 extensions + fig-scale)", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := quickRunner().Run("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Sizes) != 5 || o.Size != 8000 || o.Replicas != 5 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Size >= 8000 || q.Measure >= time.Hour {
		t.Fatalf("quick mode did not shrink: %+v", q)
	}
}

// TestQuickSweepFigures runs the shared-sweep figures in quick mode and
// checks table shapes; the sweep must be cached across figures.
func TestQuickSweepFigures(t *testing.T) {
	r := quickRunner()
	for _, id := range []string{"fig4", "fig7", "fig8", "fig10"} {
		tab, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab.ID != id {
			t.Fatalf("table ID %q, want %q", tab.ID, id)
		}
		if len(tab.Header) != 6 { // x + 5 algorithms
			t.Fatalf("%s header has %d columns", id, len(tab.Header))
		}
		if len(tab.Rows) != 2 { // quick mode: two sizes
			t.Fatalf("%s has %d rows, want 2", id, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s row width %d vs header %d", id, len(row), len(tab.Header))
			}
		}
	}
	if r.sweep == nil {
		t.Fatal("sweep not cached")
	}
}

func TestQuickFig5(t *testing.T) {
	tab, err := quickRunner().Run("fig5")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // thresholds 1..128
		t.Fatalf("fig5 rows = %d, want 8", len(tab.Rows))
	}
	// CDF columns are monotone down the rows and end at 100%.
	prev := make([]float64, len(tab.Header))
	for _, row := range tab.Rows {
		for c := 1; c < len(row); c++ {
			v := parseCell(t, row[c])
			if v < prev[c] {
				t.Fatalf("CDF decreased in column %d", c)
			}
			prev[c] = v
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	for c := 1; c < len(last); c++ {
		if parseCell(t, last[c]) < 99.9 {
			t.Fatalf("CDF at threshold 128 is %s, want ~100%%", last[c])
		}
	}
}

func TestQuickTrackedFigures(t *testing.T) {
	r := quickRunner()
	fig6, err := r.Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Rows) == 0 {
		t.Fatal("fig6 empty")
	}
	// Cumulative disruptions are non-decreasing down each column.
	prev := make([]float64, len(fig6.Header))
	for _, row := range fig6.Rows {
		for c := 1; c < len(row); c++ {
			v := parseCell(t, row[c])
			if v < prev[c] {
				t.Fatalf("fig6 cumulative count decreased in column %d", c)
			}
			prev[c] = v
		}
	}
	// fig9 reuses the cached tracked runs.
	if r.tracked == nil {
		t.Fatal("tracked runs not cached")
	}
	fig9, err := r.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9.Rows) != len(fig6.Rows) {
		t.Fatalf("fig9 rows %d != fig6 rows %d", len(fig9.Rows), len(fig6.Rows))
	}
}

func TestQuickFig11(t *testing.T) {
	tab, err := quickRunner().Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // quick: two intervals
		t.Fatalf("fig11 rows = %d, want 2", len(tab.Rows))
	}
	if len(tab.Header) != 5 {
		t.Fatalf("fig11 header = %d columns, want 5", len(tab.Header))
	}
}

func TestQuickStreamingFigures(t *testing.T) {
	r := quickRunner()
	for _, id := range []string{"fig12", "fig13", "fig14"} {
		tab, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s empty", id)
		}
	}
}

func TestQuickAblations(t *testing.T) {
	r := quickRunner()
	for _, id := range []string{"ablation-recovery", "ablation-rejoin", "ablation-priority", "ablation-guard"} {
		tab, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) < 2 {
			t.Fatalf("%s has %d rows, want >= 2", id, len(tab.Rows))
		}
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID:     "fig4",
		Title:  "demo",
		Header: []string{"x", "a"},
		Rows:   [][]string{{"1", "2.0"}},
		Notes:  []string{"a note"},
	}
	out := tab.Format()
	for _, want := range []string{"fig4", "demo", "a note", "2.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestSortTables(t *testing.T) {
	tables := []Table{{ID: "fig9"}, {ID: "fig4"}, {ID: "ablation-guard"}}
	SortTables(tables)
	if tables[0].ID != "fig4" || tables[1].ID != "fig9" || tables[2].ID != "ablation-guard" {
		t.Fatalf("sorted order wrong: %v", []string{tables[0].ID, tables[1].ID, tables[2].ID})
	}
}

func TestProgressCallback(t *testing.T) {
	var lines int
	r := NewRunner(Options{Seed: 1, Quick: true, Progress: func(string, ...any) { lines++ }})
	if _, err := r.Run("fig11"); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no progress lines emitted")
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Header: []string{"x", "a,b", "c"},
		Rows:   [][]string{{"1", "2.0%", "has \"quotes\""}},
	}
	out := tab.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `"a,b"`) {
		t.Fatalf("comma cell not quoted: %q", lines[0])
	}
	if !strings.Contains(lines[1], `""quotes""`) {
		t.Fatalf("quote cell not escaped: %q", lines[1])
	}
}
