// Package stream implements the packet-level streaming model behind the
// paper's CER evaluation (Section 6, Figures 12-14): a constant-rate stream
// (10 packets/second), per-member playback buffers, parent-failure outages
// (5 s detection + 10 s rejoin), Explicit Loss Notification down the failed
// subtree, recovery-group repair planned by the cer package, and the
// starving-time-ratio metric (total disruption time over total view time).
//
// The model is episode-lazy: packets flow implicitly while the tree is
// healthy (they arrive well inside the buffer), and exact per-sequence
// accounting happens only inside disruption episodes. This yields the same
// per-packet outcomes as simulating every hop of every packet at a tiny
// fraction of the event count (see DESIGN.md).
//
// Episode accounting is interval-based: the repair plan is computed once per
// episode into a dense arrival buffer (cer.PlanRecoveryInto), converted to a
// per-packet slack array (deadline minus arrival), and each subtree member's
// missed-packet count falls out of one binary search over the sorted slacks
// — a member at repair-hop distance h misses exactly the packets with slack
// below h. Per-member loss state is a watermark plus a small set of
// accounted [from,to) spans (spanSet), never per-packet. The historical
// per-packet loop survives only on the tracing path, which needs individual
// stall spans; the two paths are equivalence-tested.
package stream

import (
	"math"
	"slices"
	"sort"
	"time"

	"omcast/internal/cer"
	"omcast/internal/metrics"
	"omcast/internal/overlay"
	"omcast/internal/stats"
	"omcast/internal/topology"
	"omcast/internal/tracing"
	"omcast/internal/xrand"
)

// Paper defaults (Section 6, "Effects of Recovery Group Size").
const (
	// DefaultRate is the stream rate in packets per second.
	DefaultRate = 10.0
	// DefaultBuffer is the playback buffer ("5 seconds, or 50 packets").
	DefaultBuffer = 5 * time.Second
	// DefaultDetectDelay is the parent-failure detection time.
	DefaultDetectDelay = 5 * time.Second
	// DefaultRejoinDelay is the parent re-finding time after detection.
	DefaultRejoinDelay = 10 * time.Second
	// DefaultResidualMax bounds the uniform residual bandwidth members
	// donate to error recovery, in packets per second.
	DefaultResidualMax = 9.0
	// DefaultMinViewTime is the minimum view time for a member's starving
	// ratio to enter the statistics (very short visits carry no signal).
	DefaultMinViewTime = 30 * time.Second
)

// lostSlack marks a packet with no repair arrival in the slack array; it
// compares below every real hop distance.
const lostSlack = time.Duration(math.MinInt64)

// Config parameterises the streaming model.
type Config struct {
	Rate        float64       // packets per second; 0 means DefaultRate
	Buffer      time.Duration // playback buffer; 0 means DefaultBuffer
	DetectDelay time.Duration // 0 means DefaultDetectDelay
	RejoinDelay time.Duration // 0 means DefaultRejoinDelay
	// GroupSize is the recovery group size K.
	GroupSize int
	// Striped selects CER multi-source striping; false is the
	// single-source baseline.
	Striped bool
	// ResidualMax bounds each member's uniform residual bandwidth
	// (packets per second); 0 means DefaultResidualMax.
	ResidualMax float64
	// MeasureFrom discards starving ratios finalised before this time
	// (warm-up). Zero keeps everything.
	MeasureFrom time.Duration
	// MinViewTime: 0 means DefaultMinViewTime.
	MinViewTime time.Duration
	// OnEpisode, if non-nil, fires after each outage episode with the
	// orphan that planned recovery and its per-packet outcome (tracing).
	OnEpisode func(orphan *overlay.Member, failedAt time.Duration, repaired, lost int)
	// Trace, if non-nil, records each outage as a causal "repair" span
	// with detect/fetch/stall children (see internal/tracing). The nil
	// default adds one pointer check to the episode path and nothing else.
	Trace *tracing.Tracer
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = DefaultRate
	}
	if c.Buffer <= 0 {
		c.Buffer = DefaultBuffer
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = DefaultDetectDelay
	}
	if c.RejoinDelay <= 0 {
		c.RejoinDelay = DefaultRejoinDelay
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 1
	}
	if c.ResidualMax <= 0 {
		c.ResidualMax = DefaultResidualMax
	}
	if c.MinViewTime <= 0 {
		c.MinViewTime = DefaultMinViewTime
	}
	return c
}

// state is the per-member playback bookkeeping. States live in one flat
// slice indexed by MemberID (IDs are sequential and never reused), so there
// are no per-member heap objects and no map hashing on the episode path.
type state struct {
	present   bool
	viewStart time.Duration
	// residual is the bandwidth (packets per second) this member donates to
	// others' recovery.
	residual float64
	// starved accumulates playback slots whose packet missed its deadline.
	starved time.Duration
	// outageUntil marks the end of the member's current feed interruption;
	// a member cannot serve repairs while its own feed is down.
	outageUntil time.Duration
	// acc tracks the sequence ranges already accounted (watermark + spans),
	// so overlapping episodes are not double-counted.
	acc spanSet
}

// Model tracks playback quality for every overlay member.
type Model struct {
	cfg      Config
	tree     *overlay.Tree
	delay    func(a, b topology.NodeID) time.Duration
	selector cer.Selector
	rng      *xrand.Source

	// states is indexed by MemberID. Slot 0 is unused (the zero ID is
	// invalid); departed members leave a cleared slot behind.
	states []state
	ratios []float64

	// Reusable episode scratch: repair arrivals, per-packet slacks, the
	// sorted slack copy, the per-member uncovered ranges and the server
	// list. All bounded by the episode span / group size, reused forever.
	arrivalBuf []time.Duration
	slackBuf   []time.Duration
	sortedBuf  []time.Duration
	uncovBuf   []span
	serverBuf  []cer.Server

	// Episodes counts processed outage episodes (one per orphan per
	// failure).
	Episodes int
	// ELNMessages counts explicit-loss-notification sends (one per edge of
	// each disrupted subtree per episode; sequence gaps are batched).
	ELNMessages int
	// RepairRequests counts recovery-group requests issued (orphans only —
	// descendants rely on upstream recovery thanks to ELN).
	RepairRequests int
	// PacketsRepaired and PacketsLost tally the orphans' missing packets.
	PacketsRepaired int
	PacketsLost     int

	met modelMetrics
}

// modelMetrics holds the model's optional instruments; all nil until
// Instrument is called (the metric types are nil-safe no-ops).
type modelMetrics struct {
	episodes *metrics.Counter
	eln      *metrics.Counter
	requests *metrics.Counter
	repaired *metrics.Counter
	lost     *metrics.Counter
}

// Instrument registers the CER streaming model's instruments on reg:
// episode, ELN-message and repair-request counters plus the per-packet
// repair outcome tallies. All counters advance in virtual time only.
func (m *Model) Instrument(reg *metrics.Registry) {
	m.met = modelMetrics{
		episodes: reg.Counter("omcast_cer_episodes_total", "Outage episodes processed (one per orphan per failure)."),
		eln:      reg.Counter("omcast_cer_eln_messages_total", "Explicit-loss-notification messages sent down disrupted subtrees."),
		requests: reg.Counter("omcast_cer_repair_requests_total", "Recovery-group repair requests issued by orphans."),
		repaired: reg.Counter("omcast_cer_packets_repaired_total", "Orphan packets recovered in time by the recovery group."),
		lost:     reg.Counter("omcast_cer_packets_lost_total", "Orphan packets missing their playback deadline despite recovery."),
	}
}

// NewModel builds a streaming model over tree. selector chooses recovery
// groups; delay supplies underlay latencies; rng draws residual bandwidths.
func NewModel(tree *overlay.Tree, delay func(a, b topology.NodeID) time.Duration, selector cer.Selector, rng *xrand.Source, cfg Config) *Model {
	return &Model{
		cfg:      cfg.withDefaults(),
		tree:     tree,
		delay:    delay,
		selector: selector,
		rng:      rng,
	}
}

// gen returns the generation time of packet n.
func (m *Model) gen(n int64) time.Duration {
	return time.Duration(float64(n) / m.cfg.Rate * float64(time.Second))
}

// packetAfter returns the first sequence number generated at or after t.
func (m *Model) packetAfter(t time.Duration) int64 {
	n := int64(t.Seconds() * m.cfg.Rate)
	for m.gen(n) < t {
		n++
	}
	return n
}

// stateOf returns the live state for id, or nil.
func (m *Model) stateOf(id overlay.MemberID) *state {
	if id <= 0 || int64(id) >= int64(len(m.states)) {
		return nil
	}
	st := &m.states[id]
	if !st.present {
		return nil
	}
	return st
}

// Register starts playback tracking for a member (call on join).
func (m *Model) Register(member *overlay.Member, now time.Duration) {
	id := int64(member.ID)
	for int64(len(m.states)) <= id {
		m.states = append(m.states, state{})
	}
	st := &m.states[id]
	if st.present {
		return
	}
	*st = state{
		present:   true,
		viewStart: now,
		residual:  m.rng.Float64() * m.cfg.ResidualMax,
		acc:       spanSet{watermark: -1},
	}
}

// Depart finalises a member's starving ratio (call when it leaves).
func (m *Model) Depart(id overlay.MemberID, now time.Duration) {
	st := m.stateOf(id)
	if st == nil {
		return
	}
	m.finalize(st, now)
	*st = state{} // clear, releasing any span storage
}

// Finish finalises every still-present member at the end of a run. The
// states slice is ID-indexed, so the ascending scan finalises in ID order
// for free: the ratios it appends feed the reported mean and CDF, so
// iteration order must not leak into results.
func (m *Model) Finish(now time.Duration) {
	for id := range m.states {
		st := &m.states[id]
		if !st.present {
			continue
		}
		m.finalize(st, now)
		*st = state{}
	}
}

func (m *Model) finalize(st *state, now time.Duration) {
	view := now - st.viewStart
	if view < m.cfg.MinViewTime || now < m.cfg.MeasureFrom {
		return
	}
	starved := st.starved
	if starved > view {
		starved = view
	}
	m.ratios = append(m.ratios, float64(starved)/float64(view))
}

// OnFailure processes an abrupt departure: every child of the failed member
// becomes the root of a disrupted subtree, runs CER recovery, and the
// resulting per-packet outcomes are folded into every subtree member's
// playback accounting. Call before the failed member is removed from the
// tree.
func (m *Model) OnFailure(failed *overlay.Member, now time.Duration) {
	orphans := failed.Children()
	if len(orphans) == 0 {
		return
	}
	outageEnd := now + m.cfg.DetectDelay + m.cfg.RejoinDelay
	// Phase 1: mark every affected member's outage window first, so that
	// recovery-server health checks in phase 2 see members of concurrently
	// failed sibling subtrees as unavailable.
	for _, c := range orphans {
		m.tree.VisitSubtree(c, func(d *overlay.Member) {
			if st := m.stateOf(d.ID); st != nil && st.viewStart <= now && st.outageUntil < outageEnd {
				st.outageUntil = outageEnd
			}
		})
	}
	// Phase 2: each orphan plans recovery and the plan applies to its whole
	// subtree (ELN suppresses duplicate recovery below the orphan).
	for _, c := range orphans {
		m.runEpisode(c, now, outageEnd)
	}
}

// runEpisode handles one orphan's outage.
func (m *Model) runEpisode(c *overlay.Member, failedAt, outageEnd time.Duration) {
	m.Episodes++
	m.met.episodes.Inc()
	first := m.packetAfter(failedAt)
	last := m.packetAfter(outageEnd) - 1
	if last < first {
		return
	}
	requestAt := failedAt + m.cfg.DetectDelay
	if m.cfg.Trace != nil {
		// Tracing needs individual stall spans and the per-server fetch
		// detail, so it keeps the historical per-packet loop.
		m.runEpisodeTraced(c, failedAt, outageEnd, first, last, requestAt)
		return
	}
	servers, ep := m.episodeInputs(c, first, last, requestAt, outageEnd)
	m.arrivalBuf = cer.PlanRecoveryInto(ep, servers, m.arrivalBuf)
	arrivals := m.arrivalBuf
	// slack(n) = playback deadline minus repair arrival: a member whose
	// repairs travel one extra hop h misses exactly the packets with
	// slack < h. Lost packets get a -inf slack. One sort, then each
	// member's miss count is a binary search.
	count := len(arrivals)
	if cap(m.slackBuf) < count {
		m.slackBuf = make([]time.Duration, count)
	}
	slacks := m.slackBuf[:count]
	for i, at := range arrivals {
		if at < 0 {
			slacks[i] = lostSlack
		} else {
			slacks[i] = m.gen(first+int64(i)) + m.cfg.Buffer - at
		}
	}
	sorted := append(m.sortedBuf[:0], slacks...)
	slices.Sort(sorted)
	m.sortedBuf = sorted
	slot := time.Duration(float64(time.Second) / m.cfg.Rate)
	repairedTotal, lostTotal := 0, 0
	m.tree.VisitSubtree(c, func(d *overlay.Member) {
		if d != c {
			m.ELNMessages++
			m.met.eln.Inc()
		}
		st := m.stateOf(d.ID)
		if st == nil || st.viewStart > failedAt {
			return
		}
		hop := time.Duration(0)
		if d != c {
			hop = m.delay(c.Attach, d.Attach)
		}
		m.uncovBuf = st.acc.appendUncovered(m.uncovBuf[:0], first, last+1)
		missed, total := 0, int64(0)
		for _, u := range m.uncovBuf {
			total += u.to - u.from
			if u.from == first && u.to == last+1 {
				// Whole episode uncovered (the steady-state case): count
				// via the sorted slacks.
				missed += sort.Search(len(sorted), func(i int) bool { return sorted[i] >= hop })
			} else {
				// Watermark-clipped or span-fragmented range: linear over
				// the raw slack window.
				for n := u.from; n < u.to; n++ {
					if slacks[n-first] < hop {
						missed++
					}
				}
			}
		}
		st.starved += time.Duration(missed) * slot
		if d == c {
			repairedTotal += int(total) - missed
			lostTotal += missed
		}
		st.acc.add(first, last+1)
		st.acc.seal(first) // failure times are monotone: forget everything below
	})
	m.PacketsRepaired += repairedTotal
	m.PacketsLost += lostTotal
	m.met.repaired.Add(float64(repairedTotal))
	m.met.lost.Add(float64(lostTotal))
	if m.cfg.OnEpisode != nil {
		m.cfg.OnEpisode(c, failedAt, repairedTotal, lostTotal)
	}
}

// runEpisodeTraced is the per-packet episode path behind Config.Trace: same
// outcomes as the interval path (equivalence-tested), plus the causal span
// with per-server fetch children and stall spans that need individual
// packet deadlines.
func (m *Model) runEpisodeTraced(c *overlay.Member, failedAt, outageEnd time.Duration, first, last int64, requestAt time.Duration) {
	repairedBefore, lostBefore := m.PacketsRepaired, m.PacketsLost
	// The episode span covers the service-interruption window (the paper's
	// resilience metric); its children decompose it causally.
	sp := m.cfg.Trace.Start(tracing.KindRepair, int64(c.ID), failedAt).
		AttrInt("first", first).AttrInt("last", last)
	sp.Child(tracing.KindDetect, int64(c.ID), failedAt).End(requestAt, "gap-detected")
	servers, ep := m.episodeInputs(c, first, last, requestAt, outageEnd)
	plan, detail := cer.PlanRecoveryDetail(ep, servers)
	for _, fd := range detail {
		start := requestAt + fd.Server.ChainDelay
		if fd.Phase == "backlog" {
			start = outageEnd
		}
		sp.Child(tracing.KindFetch, int64(c.ID), start).
			AttrInt("server", int64(fd.Server.Member.ID)).
			AttrInt("packets", int64(fd.Packets)).
			End(fd.Last, fd.Phase)
	}
	var stallFirst, stallLast time.Duration
	stallSlots := 0
	// Fold into the subtree. ELN: c's loss notifications walk the subtree
	// edges so descendants wait for upstream repair instead of re-requesting.
	m.tree.VisitSubtree(c, func(d *overlay.Member) {
		if d != c {
			m.ELNMessages++
			m.met.eln.Inc()
		}
		st := m.stateOf(d.ID)
		if st == nil || st.viewStart > failedAt {
			return
		}
		hop := time.Duration(0)
		if d != c {
			hop = m.delay(c.Attach, d.Attach)
		}
		// Walk the same uncovered ranges the interval path accounts, so the
		// two paths charge identical packet sets.
		m.uncovBuf = st.acc.appendUncovered(m.uncovBuf[:0], first, last+1)
		for _, u := range m.uncovBuf {
			for n := u.from; n < u.to; n++ {
				deadline := m.gen(n) + m.cfg.Buffer
				arrival, repaired := plan[n]
				if !repaired || arrival+hop > deadline {
					st.starved += time.Duration(float64(time.Second) / m.cfg.Rate)
				}
				if d == c {
					if repaired && arrival <= deadline {
						m.PacketsRepaired++
					} else {
						m.PacketsLost++
						if stallSlots == 0 {
							stallFirst = deadline
						}
						stallLast = deadline
						stallSlots++
					}
				}
			}
		}
		st.acc.add(first, last+1)
		st.acc.seal(first) // mirror the interval path's monotone forgetting
	})
	repaired := m.PacketsRepaired - repairedBefore
	lost := m.PacketsLost - lostBefore
	m.met.repaired.Add(float64(repaired))
	m.met.lost.Add(float64(lost))
	if stallSlots > 0 {
		slot := time.Duration(float64(time.Second) / m.cfg.Rate)
		sp.Child(tracing.KindStall, int64(c.ID), stallFirst).
			AttrInt("slots", int64(stallSlots)).
			End(stallLast+slot, "starved")
	}
	outcome := "filled"
	switch {
	case lost > 0 && repaired > 0:
		outcome = "partial"
	case lost > 0:
		outcome = "abandoned"
	}
	sp.AttrInt("repaired", int64(repaired)).AttrInt("lost", int64(lost)).
		End(outageEnd, outcome)
	if m.cfg.OnEpisode != nil {
		m.cfg.OnEpisode(c, failedAt, repaired, lost)
	}
}

// episodeInputs selects the recovery group for orphan c and assembles the
// usable server list (reusing the model's scratch) plus the episode
// description handed to the cer planner.
func (m *Model) episodeInputs(c *overlay.Member, first, last int64, requestAt, resumeAt time.Duration) ([]cer.Server, cer.Episode) {
	group := m.selector.Select(c, m.cfg.GroupSize)
	m.RepairRequests++
	m.met.requests.Inc()
	servers := m.serverBuf[:0]
	chain := time.Duration(0)
	prev := c
	for _, g := range group {
		// The NACK chain hops requester -> g1 -> g2 -> ...
		chain += m.delay(prev.Attach, g.Attach)
		prev = g
		st := m.stateOf(g.ID)
		if st == nil || st.outageUntil > requestAt {
			continue // the server's own feed is down: it cannot help
		}
		servers = append(servers, cer.Server{
			Member:     g,
			Epsilon:    st.residual / m.cfg.Rate,
			ChainDelay: chain,
			Transfer:   m.delay(g.Attach, c.Attach),
		})
	}
	m.serverBuf = servers
	ep := cer.Episode{
		FirstMissing: first,
		LastMissing:  last,
		RequestAt:    requestAt,
		ResumeAt:     resumeAt,
		Rate:         m.cfg.Rate,
		Gen:          m.gen,
		Striped:      m.cfg.Striped,
	}
	return servers, ep
}

// Result summarises playback quality.
type Result struct {
	// AvgStarvingRatio is the mean starving-time ratio over all finalised
	// members (the paper reports it in percent).
	AvgStarvingRatio float64
	// Ratios holds the per-member ratios.
	Ratios []float64
	// Members is the number of members contributing.
	Members int
}

// Result gathers the metrics accumulated so far.
func (m *Model) Result() Result {
	return Result{
		AvgStarvingRatio: stats.Mean(m.ratios),
		Ratios:           append([]float64(nil), m.ratios...),
		Members:          len(m.ratios),
	}
}
