package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"omcast/internal/metrics/live"
	"omcast/internal/wire"
)

// Transport moves encoded envelopes between protocol endpoints. Handlers run
// on transport-owned goroutines; implementations deliver each datagram at
// most once and may drop or reorder (the protocol tolerates both).
type Transport interface {
	// Addr returns this endpoint's address.
	Addr() wire.Addr
	// Send transmits one datagram. It never blocks on the receiver.
	Send(to wire.Addr, data []byte) error
	// SetHandler installs the receive callback; must be called before the
	// first delivery is expected.
	SetHandler(h func(data []byte))
	// Close releases the endpoint; Send afterwards fails.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("node: transport closed")

// ErrUnknownAddr is returned by the in-memory transport for unregistered
// destinations.
var ErrUnknownAddr = errors.New("node: unknown address")

// ErrOversize is returned by UDPTransport.Send for datagrams over the UDP
// payload ceiling, instead of letting the OS fail (or worse, fragment) them.
var ErrOversize = errors.New("node: datagram exceeds UDP payload ceiling")

// MaxUDPDatagram is the largest payload one UDP/IPv4 datagram can carry:
// 65535 minus the 20-byte IP and 8-byte UDP headers. wire.MaxDatagram (64
// KiB) is slightly above it, so the transport enforces its own ceiling — an
// envelope that validates can still be unsendable over UDP.
const MaxUDPDatagram = 65507

// MemNetwork is an in-process datagram network for tests and examples: each
// endpoint is a registered mailbox, delivery happens on a per-endpoint
// goroutine after a configurable latency.
type MemNetwork struct {
	mu    sync.Mutex
	nodes map[wire.Addr]*memEndpoint //guardedby:mu
	// latency is set once at construction and never mutated, so reads from
	// Send goroutines need no lock (and no annotation).
	latency func(from, to wire.Addr) time.Duration
	wg      sync.WaitGroup
	closed  bool //guardedby:mu

	// mailboxDrops counts datagrams discarded because a destination mailbox
	// was full — congestion that used to be invisible. dropMetric mirrors it
	// onto a live registry when SetMetrics was called.
	mailboxDrops atomic.Int64
	dropMetric   atomic.Pointer[live.Counter]
}

// NewMemNetwork creates a network; latency may be nil (instant delivery).
func NewMemNetwork(latency func(from, to wire.Addr) time.Duration) *MemNetwork {
	return &MemNetwork{
		nodes:   make(map[wire.Addr]*memEndpoint),
		latency: latency,
	}
}

// Endpoint registers a new address on the network.
func (n *MemNetwork) Endpoint(addr wire.Addr) (Transport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("node: address %q already registered", addr)
	}
	ep := &memEndpoint{
		net:  n,
		addr: addr,
		inCh: make(chan []byte, 1024),
		done: make(chan struct{}),
	}
	n.nodes[addr] = ep
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ep.deliverLoop()
	}()
	return ep, nil
}

// SetMetrics registers the network's instruments on a live registry; safe to
// call at any point, including while traffic is flowing.
func (n *MemNetwork) SetMetrics(reg *live.Registry) {
	c := reg.Counter("omcast_node_mailbox_dropped_total",
		"Datagrams dropped because the destination endpoint's mailbox was full.")
	n.dropMetric.Store(c)
}

// MailboxDrops reports how many datagrams were discarded on full mailboxes.
func (n *MemNetwork) MailboxDrops() int64 { return n.mailboxDrops.Load() }

func (n *MemNetwork) noteMailboxDrop() {
	n.mailboxDrops.Add(1)
	n.dropMetric.Load().Inc() // nil receiver is the uninstrumented no-op
}

// Close shuts the whole network down and waits for delivery goroutines.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	n.wg.Wait()
}

func (n *MemNetwork) lookup(addr wire.Addr) (*memEndpoint, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.nodes[addr]
	return ep, ok
}

func (n *MemNetwork) remove(addr wire.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

type memEndpoint struct {
	net  *MemNetwork
	addr wire.Addr

	mu      sync.Mutex
	handler func([]byte) //guardedby:mu
	closed  bool         //guardedby:mu

	inCh chan []byte
	done chan struct{}
}

var _ Transport = (*memEndpoint)(nil)

func (e *memEndpoint) Addr() wire.Addr { return e.addr }

func (e *memEndpoint) SetHandler(h func([]byte)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *memEndpoint) Send(to wire.Addr, data []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	dst, ok := e.net.lookup(to)
	if !ok {
		return fmt.Errorf("node: sending to %q: %w", to, ErrUnknownAddr)
	}
	// Copy: the caller may reuse the buffer.
	buf := append([]byte(nil), data...)
	deliver := func() {
		select {
		case dst.inCh <- buf:
		case <-dst.done:
		default:
			// Mailbox full: drop, like a congested datagram network — but
			// count it so congestion is observable.
			e.net.noteMailboxDrop()
		}
	}
	if e.net.latency == nil {
		deliver()
		return nil
	}
	d := e.net.latency(e.addr, to)
	if d <= 0 {
		deliver()
		return nil
	}
	// The timer callback is safe after Close: deliver selects on dst.done.
	time.AfterFunc(d, deliver)
	return nil
}

func (e *memEndpoint) deliverLoop() {
	for {
		select {
		case <-e.done:
			return
		case data := <-e.inCh:
			e.mu.Lock()
			h := e.handler
			e.mu.Unlock()
			if h != nil {
				h(data)
			}
		}
	}
}

func (e *memEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	e.net.remove(e.addr)
	return nil
}

// UDPTransport runs the protocol over real UDP datagrams.
type UDPTransport struct {
	conn *net.UDPConn
	addr wire.Addr

	mu      sync.Mutex
	handler func([]byte) //guardedby:mu
	closed  bool         //guardedby:mu
	wg      sync.WaitGroup

	// oversizeDrops counts sends refused by the MaxUDPDatagram ceiling;
	// dropMetric mirrors it onto a live registry when SetMetrics was called
	// (the same observability pattern as MemNetwork's mailbox drops).
	oversizeDrops atomic.Int64
	dropMetric    atomic.Pointer[live.Counter]
}

var _ Transport = (*UDPTransport)(nil)

// NewUDPTransport binds a UDP socket. Pass "127.0.0.1:0" for an ephemeral
// loopback port.
func NewUDPTransport(listen string) (*UDPTransport, error) {
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("node: resolving %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("node: binding %q: %w", listen, err)
	}
	t := &UDPTransport{
		conn: conn,
		addr: wire.Addr(conn.LocalAddr().String()),
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop()
	}()
	return t, nil
}

// Addr implements Transport.
func (t *UDPTransport) Addr() wire.Addr { return t.addr }

// SetHandler implements Transport.
func (t *UDPTransport) SetHandler(h func([]byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// SetMetrics registers the transport's instruments on a live registry; safe
// to call at any point, including while traffic is flowing.
func (t *UDPTransport) SetMetrics(reg *live.Registry) {
	c := reg.Counter("omcast_node_udp_oversize_dropped_total",
		"Datagrams refused by UDPTransport.Send for exceeding the UDP payload ceiling.")
	t.dropMetric.Store(c)
}

// OversizeDrops reports how many sends the MTU ceiling refused.
func (t *UDPTransport) OversizeDrops() int64 { return t.oversizeDrops.Load() }

// Send implements Transport.
func (t *UDPTransport) Send(to wire.Addr, data []byte) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if len(data) > MaxUDPDatagram {
		t.oversizeDrops.Add(1)
		t.dropMetric.Load().Inc() // nil receiver is the uninstrumented no-op
		return fmt.Errorf("node: sending %d bytes to %q: %w", len(data), to, ErrOversize)
	}
	raddr, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return fmt.Errorf("node: resolving %q: %w", to, err)
	}
	if _, err := t.conn.WriteToUDP(data, raddr); err != nil {
		return fmt.Errorf("node: sending to %q: %w", to, err)
	}
	return nil
}

func (t *UDPTransport) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		data := append([]byte(nil), buf[:n]...)
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(data)
		}
	}
}

// Close shuts the socket and waits for the read loop.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
